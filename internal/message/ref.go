package message

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Ref is a pooled, reference-counted byte buffer. It backs the zero-copy
// delivery path: a broker reads one wire frame into a Ref, decodes the
// frame once, and every consumer that needs the events past the end of
// the handler call — the event cache, a relay cache, a queued wire write
// — retains the same Ref instead of copying the payload bytes. The buffer
// returns to the pool when the last holder releases it.
//
// Ownership contract (DESIGN §2.13):
//
//   - AcquireRef returns a Ref with one reference, owned by the caller.
//   - Retain adds a reference; every consumer that stores an aliasing
//     slice past the current call must Retain before storing.
//   - Release drops a reference; the buffer is recycled when the count
//     reaches zero. Releasing a nil Ref is a no-op.
//   - A missed Release leaks the buffer to the garbage collector — safe,
//     just unpooled. A Retain/Release on a recycled Ref is a bug;
//     generation checks and the accounting mode exist to catch it in
//     tests.
//
// Buffers larger than maxPooledBuf are exempt from pooling (as with the
// encode-buffer pool): they are still refcounted but are handed to the GC
// on final release rather than pinned in the pool.
type Ref struct {
	buf  []byte
	refs atomic.Int32
	// gen increments every pool cycle. Holders that captured the Ref
	// alongside its generation (see Generation) can detect use-after-
	// release in tests: a stale holder sees a different generation.
	gen atomic.Uint32
}

var refPool = sync.Pool{
	New: func() any {
		tRefPoolMiss.Inc()
		return &Ref{buf: make([]byte, 0, 4096)}
	},
}

var (
	tRefAcquires = telemetry.Default().Counter("gryphon_msgref_acquires_total",
		"Ref-counted frame buffers acquired from the pool.")
	tRefPoolMiss = telemetry.Default().Counter("gryphon_msgref_pool_misses_total",
		"Ref acquisitions that had to allocate a new buffer (pool miss or oversized).")
	tRefReleases = telemetry.Default().Counter("gryphon_msgref_releases_total",
		"Ref-counted frame buffers returned to the pool (refcount reached zero).")
	tRefOutstanding = telemetry.Default().Gauge("gryphon_msgref_outstanding",
		"Ref-counted frame buffers currently live (acquired, not yet fully released).")
)

// refAccounting, when enabled, makes refcount misuse fatal (panic on
// retain-after-free and double release) and tracks the number of
// outstanding buffers precisely. Tests enable it to assert zero leaks
// after a drain; production leaves it off so a misuse degrades to a leak
// or a counter bump, never a crash.
var (
	refAccounting   atomic.Bool
	refsOutstanding atomic.Int64
)

// SetRefAccounting toggles strict refcount accounting (test mode).
func SetRefAccounting(on bool) { refAccounting.Store(on) }

// OutstandingRefs reports the number of Refs acquired and not yet fully
// released. Only meaningful while accounting is enabled from process
// start of the workload being measured.
func OutstandingRefs() int64 { return refsOutstanding.Load() }

// AcquireRef returns a Ref whose buffer is exactly n bytes long, with a
// reference count of one owned by the caller. Buffers above maxPooledBuf
// bypass the pool in both directions so giant frames don't pin memory.
func AcquireRef(n int) *Ref {
	var r *Ref
	if n > maxPooledBuf {
		tRefPoolMiss.Inc()
		r = &Ref{buf: make([]byte, n)}
	} else {
		r = refPool.Get().(*Ref)
		if cap(r.buf) < n {
			r.buf = make([]byte, n)
		} else {
			r.buf = r.buf[:n]
		}
	}
	r.refs.Store(1)
	tRefAcquires.Inc()
	tRefOutstanding.Inc()
	refsOutstanding.Add(1)
	return r
}

// Bytes returns the backing buffer. Valid only while the caller holds a
// reference.
func (r *Ref) Bytes() []byte { return r.buf }

// Generation returns the Ref's pool-cycle generation at the time of the
// call. Test helpers pair it with the Ref to detect stale holders.
func (r *Ref) Generation() uint32 { return r.gen.Load() }

// Retain adds a reference. Nil-safe so call sites can retain events that
// were decoded by copy (no backing Ref) without branching.
func (r *Ref) Retain() {
	if r == nil {
		return
	}
	if n := r.refs.Add(1); n <= 1 && refAccounting.Load() {
		panic(fmt.Sprintf("message.Ref: retain after free (refs=%d)", n))
	}
}

// Release drops a reference; the last release recycles the buffer.
// Nil-safe. Releasing more times than retained is a bug: with accounting
// on it panics, otherwise the buffer is simply never recycled (it has
// already been handed back or leaked to the GC by the racing release).
func (r *Ref) Release() {
	if r == nil {
		return
	}
	n := r.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		if refAccounting.Load() {
			panic(fmt.Sprintf("message.Ref: double release (refs=%d)", n))
		}
		return
	}
	r.gen.Add(1)
	tRefReleases.Inc()
	tRefOutstanding.Dec()
	refsOutstanding.Add(-1)
	if cap(r.buf) <= maxPooledBuf {
		r.buf = r.buf[:0]
		refPool.Put(r)
	}
}

// Releasable is implemented by messages that hold references to pooled
// buffers (or are themselves pooled). The overlay's wire writer calls
// ReleaseRefs once the frame bytes have been appended to the outgoing
// batch, completing the "release when the last subscriber's write
// completes" half of the ownership contract. In-process transports never
// call it — the receiver owns the message and any leaked refs fall back
// to the garbage collector.
type Releasable interface {
	ReleaseRefs()
}
