// Package message defines the events and control messages exchanged inside
// the broker overlay and between brokers and clients, together with a
// compact binary wire codec.
//
// Terminology follows the paper: "events" are messages published by
// applications; everything else is a control message internal to the
// overlay (knowledge, nacks, release vectors) or the client protocol
// (subscribe, ack, deliver).
package message

import (
	"fmt"
	"sync"

	"repro/internal/filter"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// Event is an application-published message, stamped by its pubend.
//
// When the event was decoded zero-copy from a pooled wire frame
// (DecodeShared), ref points at the frame's buffer and Payload aliases
// it. Consumers that store the event past the handler call must Retain
// it and Release when done; see the ownership contract on Ref. Events
// built any other way (publish path, Clone, tests) have a nil ref and
// Retain/Release are no-ops.
type Event struct {
	Pubend    vtime.PubendID
	Timestamp vtime.Timestamp
	Attrs     filter.Attributes
	Payload   []byte

	ref *Ref
}

// Retain pins the event's backing frame buffer (no-op for events that
// own their payload). Call before storing the event past the scope in
// which it was received.
func (e *Event) Retain() {
	if e != nil {
		e.ref.Retain()
	}
}

// Release unpins the event's backing frame buffer (no-op for events
// that own their payload). The Payload must not be touched afterwards.
func (e *Event) Release() {
	if e != nil {
		e.ref.Release()
	}
}

// Clone returns a deep copy of the event. The copy owns its payload —
// this is the escape hatch for callers that must outlive the wire frame
// without participating in retain/release.
func (e *Event) Clone() *Event {
	cp := &Event{
		Pubend:    e.Pubend,
		Timestamp: e.Timestamp,
		Attrs:     e.Attrs.Clone(),
		Payload:   make([]byte, len(e.Payload)),
	}
	copy(cp.Payload, e.Payload)
	return cp
}

// String implements fmt.Stringer.
func (e *Event) String() string {
	return fmt.Sprintf("event{%s@%d, %d attrs, %dB}", e.Pubend, e.Timestamp, len(e.Attrs), len(e.Payload))
}

// Type discriminates wire messages.
type Type uint8

// Wire message types.
const (
	TypeKnowledge    Type = iota + 1 // broker→broker: tick ranges + events
	TypeNack                         // broker→broker: missing tick spans
	TypeRelease                      // broker→broker: aggregated release vector
	TypePublish                      // client→PHB
	TypePublishAck                   // PHB→client
	TypeSubscribe                    // client→SHB
	TypeSubscribeAck                 // SHB→client
	TypeDeliver                      // SHB→client: event/silence/gap batch
	TypeAck                          // client→SHB: checkpoint token
	TypeCredit                       // client→SHB: flow-control credits
	TypeDetach                       // client→SHB: orderly disconnect
	TypeHello                        // link role handshake
	TypeSubUpdate                    // subscription propagation toward the PHBs
	TypeUnsubscribe                  // client→SHB: permanently end a durable subscription
	TypeLeave                        // broker→broker: deliberate departure from the parent
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeKnowledge:
		return "knowledge"
	case TypeNack:
		return "nack"
	case TypeRelease:
		return "release"
	case TypePublish:
		return "publish"
	case TypePublishAck:
		return "publish-ack"
	case TypeSubscribe:
		return "subscribe"
	case TypeSubscribeAck:
		return "subscribe-ack"
	case TypeDeliver:
		return "deliver"
	case TypeAck:
		return "ack"
	case TypeCredit:
		return "credit"
	case TypeDetach:
		return "detach"
	case TypeHello:
		return "hello"
	case TypeSubUpdate:
		return "sub-update"
	case TypeUnsubscribe:
		return "unsubscribe"
	case TypeLeave:
		return "leave"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Message is the interface satisfied by every wire message.
type Message interface {
	// WireType reports the message's wire discriminator.
	WireType() Type
}

// Knowledge carries tick knowledge for one pubend downstream: S/L ranges
// plus the events for D ticks. The receiver accumulates the ranges into its
// knowledge stream and caches the events.
type Knowledge struct {
	Pubend vtime.PubendID
	Ranges []tick.Range // S and L ranges (D ticks implied by Events)
	Events []*Event     // D ticks, in timestamp order
}

// WireType implements Message.
func (*Knowledge) WireType() Type { return TypeKnowledge }

// RetainRefs pins every event's backing frame buffer. A sender that
// enqueues the knowledge onto a wire link calls this first; the link's
// writer balances it with ReleaseRefs once the frame is serialized.
func (k *Knowledge) RetainRefs() {
	for _, ev := range k.Events {
		ev.Retain()
	}
}

// ReleaseRefs implements Releasable: unpins every event's backing frame
// buffer.
func (k *Knowledge) ReleaseRefs() {
	for _, ev := range k.Events {
		ev.Release()
	}
}

// Nack requests knowledge for the given tick spans of one pubend. Nacks
// flow upstream toward the pubend.
type Nack struct {
	Pubend vtime.PubendID
	Spans  []tick.Span
}

// WireType implements Message.
func (*Nack) WireType() Type { return TypeNack }

// Release carries the release protocol's aggregated minima upstream: the
// minimum released timestamp and minimum latestDelivered across every SHB
// in the sender's subtree (paper, section 3).
type Release struct {
	Pubend          vtime.PubendID
	Released        vtime.Timestamp
	LatestDelivered vtime.Timestamp
}

// WireType implements Message.
func (*Release) WireType() Type { return TypeRelease }

// Publish is a client's request to publish one event. The PHB assigns the
// pubend (by PubendHint when valid) and the timestamp.
type Publish struct {
	PubendHint vtime.PubendID // 0 means "broker chooses"
	Attrs      filter.Attributes
	Payload    []byte
	Token      uint64 // echoed in PublishAck
}

// WireType implements Message.
func (*Publish) WireType() Type { return TypePublish }

// PublishAck confirms an event was logged at the PHB.
type PublishAck struct {
	Token     uint64
	Pubend    vtime.PubendID
	Timestamp vtime.Timestamp
}

// WireType implements Message.
func (*PublishAck) WireType() Type { return TypePublishAck }

// Subscribe attaches (or re-attaches) a durable subscriber to an SHB.
type Subscribe struct {
	Subscriber vtime.SubscriberID
	Filter     string // subscription source text (filter.Parse syntax)
	CT         *vtime.CheckpointToken
	Resume     bool   // false: first ever connect (CT ignored)
	Credits    uint32 // initial flow-control credits
}

// WireType implements Message.
func (*Subscribe) WireType() Type { return TypeSubscribe }

// SubscribeAck completes attachment and, for a first connect, tells the
// subscriber its starting checkpoint token.
type SubscribeAck struct {
	Subscriber vtime.SubscriberID
	CT         *vtime.CheckpointToken
	Err        string // non-empty on rejection
}

// WireType implements Message.
func (*SubscribeAck) WireType() Type { return TypeSubscribeAck }

// DeliverKind discriminates the per-pubend delivery messages of the paper's
// subscriber model (section 2).
type DeliverKind uint8

// Delivery kinds.
const (
	DeliverEvent   DeliverKind = iota + 1 // event matching the subscription at Timestamp
	DeliverSilence                        // no matching event in (prev, Timestamp]
	DeliverGap                            // information about (prev, Timestamp] was early-released
)

// String implements fmt.Stringer.
func (k DeliverKind) String() string {
	switch k {
	case DeliverEvent:
		return "event"
	case DeliverSilence:
		return "silence"
	case DeliverGap:
		return "gap"
	default:
		return fmt.Sprintf("DeliverKind(%d)", uint8(k))
	}
}

// Delivery is one message of the subscriber stream for one pubend.
type Delivery struct {
	Kind      DeliverKind
	Pubend    vtime.PubendID
	Timestamp vtime.Timestamp
	Event     *Event // nil unless Kind == DeliverEvent
}

// Deliver batches deliveries on the SHB→client FIFO link.
type Deliver struct {
	Subscriber vtime.SubscriberID
	Deliveries []Delivery

	// pooled marks envelopes from GetDeliver; ReleaseRefs recycles them.
	pooled bool
}

// WireType implements Message.
func (*Deliver) WireType() Type { return TypeDeliver }

// deliverPool recycles the per-delivery SHB→client envelopes. The fan-out
// path sends one Deliver per matched (subscriber, event) pair, so without
// pooling each delivery allocates an envelope plus its one-element slice.
var deliverPool = sync.Pool{
	New: func() any {
		return &Deliver{Deliveries: make([]Delivery, 0, 1), pooled: true}
	},
}

// GetDeliver returns a pooled single-delivery envelope carrying d for sub.
// The event's buffer is retained; the envelope and the reference are both
// given back when a wire writer calls ReleaseRefs after framing. Envelopes
// sent over an in-process transport are never recycled — the receiver owns
// them and the GC reclaims both envelope and buffer reference.
func GetDeliver(sub vtime.SubscriberID, d Delivery) *Deliver {
	m := deliverPool.Get().(*Deliver)
	m.Subscriber = sub
	m.Deliveries = append(m.Deliveries[:0], d)
	d.Event.Retain()
	return m
}

// ReleaseRefs implements Releasable: unpins every delivery's event buffer
// and, for pooled envelopes, recycles the envelope itself. The caller must
// not touch the message afterwards.
func (d *Deliver) ReleaseRefs() {
	for i := range d.Deliveries {
		d.Deliveries[i].Event.Release()
		d.Deliveries[i].Event = nil
	}
	if d.pooled && cap(d.Deliveries) <= 8 {
		d.Deliveries = d.Deliveries[:0]
		deliverPool.Put(d)
	}
}

// Ack acknowledges consumption: all messages with timestamps <= CT[p] for
// every pubend p are consumed and their storage may be released.
type Ack struct {
	Subscriber vtime.SubscriberID
	CT         *vtime.CheckpointToken
}

// WireType implements Message.
func (*Ack) WireType() Type { return TypeAck }

// Credit grants the SHB additional flow-control credits: the SHB may send
// that many more event deliveries to this subscriber.
type Credit struct {
	Subscriber vtime.SubscriberID
	Credits    uint32
}

// WireType implements Message.
func (*Credit) WireType() Type { return TypeCredit }

// Detach is an orderly disconnect of a durable subscriber. The
// subscription itself persists at the SHB.
type Detach struct {
	Subscriber vtime.SubscriberID
}

// WireType implements Message.
func (*Detach) WireType() Type { return TypeDetach }

// LinkRole identifies what the dialing end of a connection is.
type LinkRole uint8

// Link roles.
const (
	RoleBroker     LinkRole = iota + 1 // a downstream broker joining the tree
	RolePublisher                      // a publishing client
	RoleSubscriber                     // a durable subscriber client
	RoleProbe                          // a transient liveness/tree-position probe; never registered as a link
)

// String implements fmt.Stringer.
func (r LinkRole) String() string {
	switch r {
	case RoleBroker:
		return "broker"
	case RolePublisher:
		return "publisher"
	case RoleSubscriber:
		return "subscriber"
	case RoleProbe:
		return "probe"
	default:
		return fmt.Sprintf("LinkRole(%d)", uint8(r))
	}
}

// Hello is the first message on every connection, declaring the dialer's
// role. Brokers use it to classify the link.
//
// Between brokers, Hello doubles as the tree-position advertisement the
// repair policy relies on: a parent replies to a RoleBroker or RoleProbe
// Hello with an Info-carrying Hello stating the root it currently hangs
// from (Root), the epoch that root minted when it last became a root
// (Epoch), and its own depth below that root (Depth). The tuple lets an
// orphaned broker reject candidate parents inside its own orphaned
// subtree — a descendant always advertises the orphan itself as Root, or
// a strictly greater Depth under the same (Root, Epoch) — so automatic
// fail-over can never close a cycle (DESIGN §2.12).
type Hello struct {
	Role LinkRole
	Name string // diagnostic

	// Tree-position advertisement (broker→broker replies only).
	Info  bool   // whether Root/Epoch/Depth below are meaningful
	Root  string // name of the tree root the sender hangs from
	Epoch uint64 // root's incarnation counter (minted on becoming root)
	Depth uint32 // sender's hop distance below Root (root = 0)
}

// WireType implements Message.
func (*Hello) WireType() Type { return TypeHello }

// Unsubscribe permanently removes a durable subscription: its unconsumed
// backlog is released and the persistent storage it was pinning (pubend
// events, PFS records) becomes reclaimable. Contrast with Detach, which
// only disconnects.
type Unsubscribe struct {
	Subscriber vtime.SubscriberID
}

// WireType implements Message.
func (*Unsubscribe) WireType() Type { return TypeUnsubscribe }

// SubUpdate propagates a subscription toward the publisher hosting brokers
// so intermediate brokers can filter events per downstream link (convert
// D ticks that match nothing below the link into S).
type SubUpdate struct {
	Subscriber vtime.SubscriberID
	Filter     string
	Remove     bool
}

// WireType implements Message.
func (*SubUpdate) WireType() Type { return TypeSubUpdate }

// Leave announces a deliberate departure from the parent broker: the child
// is detaching or re-parenting and will not return on this link. The
// parent may purge the link's soft state (announced subscriptions, release
// floors) instead of retaining it for a reconnect — a crashed child never
// sends Leave, so its state is kept until a successor re-announces it.
// Re-parent ordering sends Leave only after the new parent link is up and
// resynced (announce-before-withdraw, see DESIGN §2.11).
type Leave struct {
	Name string // departing broker's name (diagnostic)
}

// WireType implements Message.
func (*Leave) WireType() Type { return TypeLeave }
