package message

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/filter"
	"repro/internal/tick"
	"repro/internal/vtime"
)

func sampleEvent() *Event {
	return &Event{
		Pubend:    3,
		Timestamp: 12345,
		Attrs: filter.Attributes{
			"topic": filter.String("trades.NYSE"),
			"price": filter.Float(10.5),
			"qty":   filter.Int(-7),
			"hot":   filter.Bool(true),
		},
		Payload: []byte("hello world"),
	}
}

func eventsEqual(a, b *Event) bool {
	if a.Pubend != b.Pubend || a.Timestamp != b.Timestamp {
		return false
	}
	if string(a.Payload) != string(b.Payload) {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for k, v := range a.Attrs {
		if !v.Equal(b.Attrs[k]) || v.Kind() != b.Attrs[k].Kind() {
			return false
		}
	}
	return true
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf, err := Encode(nil, m)
	if err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	if got.WireType() != m.WireType() {
		t.Fatalf("wire type changed: %v -> %v", m.WireType(), got.WireType())
	}
	return got
}

func TestKnowledgeRoundTrip(t *testing.T) {
	m := &Knowledge{
		Pubend: 7,
		Ranges: []tick.Range{
			{Start: 1, End: 9, Kind: tick.S},
			{Start: 10, End: 10, Kind: tick.L},
		},
		Events: []*Event{sampleEvent(), sampleEvent()},
	}
	got, ok := roundTrip(t, m).(*Knowledge)
	if !ok {
		t.Fatal("wrong type")
	}
	if got.Pubend != 7 || !reflect.DeepEqual(got.Ranges, m.Ranges) {
		t.Errorf("ranges mismatch: %+v", got)
	}
	if len(got.Events) != 2 || !eventsEqual(got.Events[0], m.Events[0]) {
		t.Errorf("events mismatch: %+v", got.Events)
	}
}

func TestKnowledgeEmptyRoundTrip(t *testing.T) {
	got, ok := roundTrip(t, &Knowledge{Pubend: 1}).(*Knowledge)
	if !ok || got.Pubend != 1 || len(got.Ranges) != 0 || len(got.Events) != 0 {
		t.Errorf("empty knowledge mismatch: %+v", got)
	}
}

func TestNackRoundTrip(t *testing.T) {
	m := &Nack{Pubend: 2, Spans: []tick.Span{{Start: 5, End: 9}, {Start: 20, End: 20}}}
	got, ok := roundTrip(t, m).(*Nack)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("nack mismatch: %+v vs %+v", got, m)
	}
}

func TestReleaseRoundTrip(t *testing.T) {
	m := &Release{Pubend: 9, Released: 100, LatestDelivered: 200}
	got, ok := roundTrip(t, m).(*Release)
	if !ok || *got != *m {
		t.Errorf("release mismatch: %+v", got)
	}
}

func TestPublishRoundTrip(t *testing.T) {
	m := &Publish{
		PubendHint: 1,
		Token:      777,
		Attrs:      filter.Attributes{"a": filter.Int(1)},
		Payload:    []byte{1, 2, 3},
	}
	got, ok := roundTrip(t, m).(*Publish)
	if !ok || got.Token != 777 || got.PubendHint != 1 ||
		!got.Attrs["a"].Equal(filter.Int(1)) || string(got.Payload) != "\x01\x02\x03" {
		t.Errorf("publish mismatch: %+v", got)
	}
}

func TestPublishAckRoundTrip(t *testing.T) {
	m := &PublishAck{Token: 1, Pubend: 2, Timestamp: 3}
	got, ok := roundTrip(t, m).(*PublishAck)
	if !ok || *got != *m {
		t.Errorf("publish-ack mismatch: %+v", got)
	}
}

func TestSubscribeRoundTrip(t *testing.T) {
	ct := vtime.NewCheckpointToken()
	ct.Set(1, 50)
	ct.Set(2, 75)
	m := &Subscribe{
		Subscriber: 42,
		Filter:     `topic = "a" and price > 5`,
		CT:         ct,
		Resume:     true,
		Credits:    128,
	}
	got, ok := roundTrip(t, m).(*Subscribe)
	if !ok || got.Subscriber != 42 || got.Filter != m.Filter ||
		!got.CT.Equal(ct) || !got.Resume || got.Credits != 128 {
		t.Errorf("subscribe mismatch: %+v", got)
	}
}

func TestSubscribeAckRoundTrip(t *testing.T) {
	ct := vtime.NewCheckpointToken()
	ct.Set(4, 9)
	m := &SubscribeAck{Subscriber: 1, CT: ct, Err: "boom"}
	got, ok := roundTrip(t, m).(*SubscribeAck)
	if !ok || got.Err != "boom" || !got.CT.Equal(ct) {
		t.Errorf("subscribe-ack mismatch: %+v", got)
	}
}

func TestDeliverRoundTrip(t *testing.T) {
	m := &Deliver{
		Subscriber: 5,
		Deliveries: []Delivery{
			{Kind: DeliverEvent, Pubend: 1, Timestamp: 10, Event: sampleEvent()},
			{Kind: DeliverSilence, Pubend: 1, Timestamp: 20},
			{Kind: DeliverGap, Pubend: 2, Timestamp: 30},
		},
	}
	got, ok := roundTrip(t, m).(*Deliver)
	if !ok || got.Subscriber != 5 || len(got.Deliveries) != 3 {
		t.Fatalf("deliver mismatch: %+v", got)
	}
	if got.Deliveries[0].Kind != DeliverEvent || !eventsEqual(got.Deliveries[0].Event, sampleEvent()) {
		t.Errorf("event delivery mismatch")
	}
	if got.Deliveries[1].Kind != DeliverSilence || got.Deliveries[1].Timestamp != 20 {
		t.Errorf("silence delivery mismatch")
	}
	if got.Deliveries[2].Kind != DeliverGap || got.Deliveries[2].Pubend != 2 {
		t.Errorf("gap delivery mismatch")
	}
}

func TestAckCreditDetachRoundTrip(t *testing.T) {
	ct := vtime.NewCheckpointToken()
	ct.Set(1, 11)
	if got, ok := roundTrip(t, &Ack{Subscriber: 3, CT: ct}).(*Ack); !ok ||
		got.Subscriber != 3 || !got.CT.Equal(ct) {
		t.Errorf("ack mismatch: %+v", got)
	}
	if got, ok := roundTrip(t, &Credit{Subscriber: 3, Credits: 64}).(*Credit); !ok ||
		got.Credits != 64 {
		t.Errorf("credit mismatch: %+v", got)
	}
	if got, ok := roundTrip(t, &Detach{Subscriber: 8}).(*Detach); !ok || got.Subscriber != 8 {
		t.Errorf("detach mismatch: %+v", got)
	}
	if got, ok := roundTrip(t, &Leave{Name: "edge3"}).(*Leave); !ok || got.Name != "edge3" {
		t.Errorf("leave mismatch: %+v", got)
	}
}

func TestEventStandaloneCodec(t *testing.T) {
	e := sampleEvent()
	buf := AppendEvent(nil, e)
	got, n, err := DecodeEvent(buf)
	if err != nil {
		t.Fatalf("DecodeEvent: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if !eventsEqual(e, got) {
		t.Errorf("event mismatch: %+v vs %+v", got, e)
	}
}

func TestEventClone(t *testing.T) {
	e := sampleEvent()
	c := e.Clone()
	c.Payload[0] = 'X'
	c.Attrs["topic"] = filter.String("other")
	if e.Payload[0] == 'X' || e.Attrs["topic"].Str() != "trades.NYSE" {
		t.Error("Clone aliased the original")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("decoding empty buffer should fail")
	}
	if _, err := Decode([]byte{200}); err == nil {
		t.Error("unknown type should fail")
	}
	// Truncate every valid encoding at every point: must error, not panic.
	msgs := []Message{
		&Knowledge{Pubend: 1, Ranges: []tick.Range{{Start: 1, End: 2, Kind: tick.S}},
			Events: []*Event{sampleEvent()}},
		&Nack{Pubend: 1, Spans: []tick.Span{{Start: 1, End: 2}}},
		&Release{Pubend: 1, Released: 2, LatestDelivered: 3},
		&Publish{Attrs: filter.Attributes{"a": filter.String("b")}, Payload: []byte("x")},
		&Subscribe{Subscriber: 1, Filter: "true", CT: vtime.NewCheckpointToken()},
		&Deliver{Subscriber: 1, Deliveries: []Delivery{
			{Kind: DeliverEvent, Pubend: 1, Timestamp: 2, Event: sampleEvent()}}},
		&Ack{Subscriber: 1, CT: vtime.NewCheckpointToken()},
	}
	for _, m := range msgs {
		full, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		for cut := 1; cut < len(full); cut++ {
			if _, err := Decode(full[:cut]); err == nil {
				t.Errorf("%T truncated at %d/%d decoded successfully", m, cut, len(full))
				break
			}
		}
	}
}

// Property: Decode never panics on arbitrary bytes.
func TestDecodeNeverPanicsQuick(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b) //nolint:errcheck // only checking for panics
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: random knowledge messages survive a round trip.
func TestKnowledgeRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := &Knowledge{Pubend: vtime.PubendID(rng.Uint32())}
		for i := rng.Intn(5); i > 0; i-- {
			start := vtime.Timestamp(rng.Int63n(1 << 40))
			m.Ranges = append(m.Ranges, tick.Range{
				Start: start,
				End:   start + vtime.Timestamp(rng.Int63n(1000)),
				Kind:  []tick.Kind{tick.Q, tick.S, tick.D, tick.L}[rng.Intn(4)],
			})
		}
		for i := rng.Intn(3); i > 0; i-- {
			payload := make([]byte, rng.Intn(64))
			rng.Read(payload)
			m.Events = append(m.Events, &Event{
				Pubend:    m.Pubend,
				Timestamp: vtime.Timestamp(rng.Int63n(1 << 40)),
				Attrs:     filter.Attributes{"n": filter.Int(rng.Int63())},
				Payload:   payload,
			})
		}
		got, ok := roundTrip(t, m).(*Knowledge)
		if !ok {
			t.Fatal("wrong type")
		}
		if !reflect.DeepEqual(got.Ranges, m.Ranges) && !(len(got.Ranges) == 0 && len(m.Ranges) == 0) {
			t.Fatalf("trial %d ranges mismatch", trial)
		}
		if len(got.Events) != len(m.Events) {
			t.Fatalf("trial %d events count mismatch", trial)
		}
		for i := range m.Events {
			if !eventsEqual(got.Events[i], m.Events[i]) {
				t.Fatalf("trial %d event %d mismatch", trial, i)
			}
		}
	}
}

func TestHelloSubUpdateRoundTrip(t *testing.T) {
	if got, ok := roundTrip(t, &Hello{Role: RoleSubscriber, Name: "client-7"}).(*Hello); !ok ||
		got.Role != RoleSubscriber || got.Name != "client-7" || got.Info {
		t.Errorf("hello mismatch: %+v", got)
	}
	info := &Hello{Role: RoleBroker, Name: "mid2", Info: true, Root: "phb", Epoch: 7, Depth: 3}
	if got, ok := roundTrip(t, info).(*Hello); !ok || *got != *info {
		t.Errorf("info hello mismatch: %+v", got)
	}
	probe := &Hello{Role: RoleProbe, Name: "shb4"}
	if got, ok := roundTrip(t, probe).(*Hello); !ok || *got != *probe {
		t.Errorf("probe hello mismatch: %+v", got)
	}
	m := &SubUpdate{Subscriber: 4, Filter: `topic = "x"`, Remove: true}
	if got, ok := roundTrip(t, m).(*SubUpdate); !ok || *got != *m {
		t.Errorf("sub-update mismatch: %+v", got)
	}
	for _, r := range []LinkRole{RoleBroker, RolePublisher, RoleSubscriber, RoleProbe, LinkRole(9)} {
		if r.String() == "" {
			t.Error("empty role string")
		}
	}
}
