package message

import (
	"testing"

	"repro/internal/tick"
	"repro/internal/vtime"
)

// BenchmarkEncodeDecodeKnowledge measures the wire codec on a typical
// knowledge message (8 events + 8 silence ranges).
func BenchmarkEncodeDecodeKnowledge(b *testing.B) {
	know := &Knowledge{Pubend: 1}
	for i := 0; i < 8; i++ {
		ev := sampleEvent()
		ev.Timestamp = vtime.Timestamp(i)*100 + 50
		know.Events = append(know.Events, ev)
		know.Ranges = append(know.Ranges, tick.Range{
			Start: vtime.Timestamp(i) * 100, End: vtime.Timestamp(i)*100 + 49, Kind: tick.S,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	var buf []byte
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Encode(buf[:0], know)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
