//go:build !race

package message

// raceEnabled reports whether the race detector is compiled in; allocation
// gates skip under -race because the detector's shadow bookkeeping inflates
// allocation counts unpredictably.
const raceEnabled = false
