package message

import (
	"encoding/binary"
	"sync"
)

// FrameHeaderLen is the length prefix preceding every encoded message on a
// stream transport: a big-endian uint32 body length.
const FrameHeaderLen = 4

// maxPooledBuf caps the encode buffers the pool will retain. A rare giant
// frame (a catchup knowledge burst, a megabyte payload) should not pin its
// buffer for the life of the process.
const maxPooledBuf = 1 << 20

// encBufPool recycles encode buffers across connections and write batches,
// so the steady-state wire path allocates nothing per frame.
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetEncodeBuffer returns a pooled, zero-length encode buffer. Release it
// with PutEncodeBuffer when the frame bytes have been handed to the
// kernel.
func GetEncodeBuffer() *[]byte {
	return encBufPool.Get().(*[]byte)
}

// PutEncodeBuffer recycles buf. Buffers grown past maxPooledBuf are
// dropped so burst-sized allocations are returned to the collector.
func PutEncodeBuffer(buf *[]byte) {
	if buf == nil || cap(*buf) > maxPooledBuf {
		return
	}
	*buf = (*buf)[:0]
	encBufPool.Put(buf)
}

// AppendFramed appends one length-prefixed frame (FrameHeaderLen bytes of
// big-endian body length, then the Encode body) to buf and returns the
// extended slice. On encode failure buf is returned unchanged, so a write
// coalescer can skip a bad message without poisoning the batch.
func AppendFramed(buf []byte, m Message) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	out, err := Encode(buf, m)
	if err != nil {
		return buf[:start], err
	}
	binary.BigEndian.PutUint32(out[start:], uint32(len(out)-start-FrameHeaderLen))
	return out, nil
}
