package message

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/filter"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// ErrTruncated reports a message body shorter than its structure requires.
var ErrTruncated = errors.New("message: truncated")

// Encode serializes m (type discriminator followed by body) and appends it
// to buf, returning the extended slice. It never fails for well-formed
// messages built through this package's types.
func Encode(buf []byte, m Message) ([]byte, error) {
	buf = append(buf, byte(m.WireType()))
	switch v := m.(type) {
	case *Knowledge:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Pubend))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Ranges)))
		for _, r := range v.Ranges {
			buf = appendRange(buf, r)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Events)))
		for _, e := range v.Events {
			buf = appendEvent(buf, e)
		}
	case *Nack:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Pubend))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Spans)))
		for _, s := range v.Spans {
			buf = binary.BigEndian.AppendUint64(buf, uint64(s.Start))
			buf = binary.BigEndian.AppendUint64(buf, uint64(s.End))
		}
	case *Release:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Pubend))
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Released))
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.LatestDelivered))
	case *Publish:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.PubendHint))
		buf = binary.BigEndian.AppendUint64(buf, v.Token)
		buf = appendAttrs(buf, v.Attrs)
		buf = appendBytes(buf, v.Payload)
	case *PublishAck:
		buf = binary.BigEndian.AppendUint64(buf, v.Token)
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Pubend))
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Timestamp))
	case *Subscribe:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Subscriber))
		buf = appendString(buf, v.Filter)
		buf = v.CT.Encode(buf)
		if v.Resume {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.BigEndian.AppendUint32(buf, v.Credits)
	case *SubscribeAck:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Subscriber))
		buf = v.CT.Encode(buf)
		buf = appendString(buf, v.Err)
	case *Deliver:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Subscriber))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Deliveries)))
		for _, d := range v.Deliveries {
			buf = append(buf, byte(d.Kind))
			buf = binary.BigEndian.AppendUint32(buf, uint32(d.Pubend))
			buf = binary.BigEndian.AppendUint64(buf, uint64(d.Timestamp))
			if d.Kind == DeliverEvent {
				buf = appendEvent(buf, d.Event)
			}
		}
	case *Ack:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Subscriber))
		buf = v.CT.Encode(buf)
	case *Credit:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Subscriber))
		buf = binary.BigEndian.AppendUint32(buf, v.Credits)
	case *Detach:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Subscriber))
	case *Hello:
		buf = append(buf, byte(v.Role))
		buf = appendString(buf, v.Name)
		if v.Info {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = appendString(buf, v.Root)
		buf = binary.BigEndian.AppendUint64(buf, v.Epoch)
		buf = binary.BigEndian.AppendUint32(buf, v.Depth)
	case *SubUpdate:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Subscriber))
		buf = appendString(buf, v.Filter)
		if v.Remove {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case *Unsubscribe:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Subscriber))
	case *Leave:
		buf = appendString(buf, v.Name)
	default:
		return nil, fmt.Errorf("message: cannot encode %T", m)
	}
	return buf, nil
}

// Decode parses one message produced by Encode. Decoded messages own
// every byte they reference: payloads and strings are copied out of buf,
// so the caller may reuse buf immediately.
func Decode(buf []byte) (Message, error) {
	return decode(buf, nil)
}

// DecodeShared parses one message from a pooled frame buffer, decoding
// once and sharing the buffer instead of copying it. Knowledge frames —
// the broker→broker event stream, the only high-volume event carrier on
// ingress — are decoded zero-copy: each event's Payload aliases ref's
// buffer and the event remembers ref, so consumers retain/release the
// frame rather than copying payload bytes. Every other message type is
// decoded with full copy semantics (client-bound and client-originated
// messages hand byte slices to application code that is free to keep
// them), so the caller can always release its ref as soon as the handler
// returns.
func DecodeShared(ref *Ref) (Message, error) {
	buf := ref.Bytes()
	if len(buf) > 0 && Type(buf[0]) == TypeKnowledge {
		return decode(buf, ref)
	}
	return decode(buf, nil)
}

func decode(buf []byte, ref *Ref) (Message, error) {
	if len(buf) == 0 {
		return nil, ErrTruncated
	}
	r := &reader{buf: buf[1:], ref: ref}
	var m Message
	switch Type(buf[0]) {
	case TypeKnowledge:
		v := &Knowledge{Pubend: vtime.PubendID(r.u32())}
		n := int(r.u32())
		if !r.checkCount(n, 17) {
			return nil, r.fail()
		}
		v.Ranges = make([]tick.Range, n)
		for i := range v.Ranges {
			v.Ranges[i] = r.tickRange()
		}
		n = int(r.u32())
		if !r.checkCount(n, 12) {
			return nil, r.fail()
		}
		v.Events = make([]*Event, n)
		for i := range v.Events {
			v.Events[i] = r.event()
		}
		m = v
	case TypeNack:
		v := &Nack{Pubend: vtime.PubendID(r.u32())}
		n := int(r.u32())
		if !r.checkCount(n, 16) {
			return nil, r.fail()
		}
		v.Spans = make([]tick.Span, n)
		for i := range v.Spans {
			v.Spans[i] = tick.Span{
				Start: vtime.Timestamp(r.u64()),
				End:   vtime.Timestamp(r.u64()),
			}
		}
		m = v
	case TypeRelease:
		m = &Release{
			Pubend:          vtime.PubendID(r.u32()),
			Released:        vtime.Timestamp(r.u64()),
			LatestDelivered: vtime.Timestamp(r.u64()),
		}
	case TypePublish:
		m = &Publish{
			PubendHint: vtime.PubendID(r.u32()),
			Token:      r.u64(),
			Attrs:      r.attrs(),
			Payload:    r.bytes(),
		}
	case TypePublishAck:
		m = &PublishAck{
			Token:     r.u64(),
			Pubend:    vtime.PubendID(r.u32()),
			Timestamp: vtime.Timestamp(r.u64()),
		}
	case TypeSubscribe:
		m = &Subscribe{
			Subscriber: vtime.SubscriberID(r.u32()),
			Filter:     r.str(),
			CT:         r.ct(),
			Resume:     r.u8() == 1,
			Credits:    r.u32(),
		}
	case TypeSubscribeAck:
		m = &SubscribeAck{
			Subscriber: vtime.SubscriberID(r.u32()),
			CT:         r.ct(),
			Err:        r.str(),
		}
	case TypeDeliver:
		v := &Deliver{Subscriber: vtime.SubscriberID(r.u32())}
		n := int(r.u32())
		if !r.checkCount(n, 13) {
			return nil, r.fail()
		}
		v.Deliveries = make([]Delivery, n)
		for i := range v.Deliveries {
			d := Delivery{
				Kind:      DeliverKind(r.u8()),
				Pubend:    vtime.PubendID(r.u32()),
				Timestamp: vtime.Timestamp(r.u64()),
			}
			if d.Kind == DeliverEvent {
				d.Event = r.event()
			}
			v.Deliveries[i] = d
		}
		m = v
	case TypeAck:
		m = &Ack{Subscriber: vtime.SubscriberID(r.u32()), CT: r.ct()}
	case TypeCredit:
		m = &Credit{Subscriber: vtime.SubscriberID(r.u32()), Credits: r.u32()}
	case TypeDetach:
		m = &Detach{Subscriber: vtime.SubscriberID(r.u32())}
	case TypeHello:
		m = &Hello{
			Role:  LinkRole(r.u8()),
			Name:  r.str(),
			Info:  r.u8() == 1,
			Root:  r.str(),
			Epoch: r.u64(),
			Depth: r.u32(),
		}
	case TypeSubUpdate:
		m = &SubUpdate{
			Subscriber: vtime.SubscriberID(r.u32()),
			Filter:     r.str(),
			Remove:     r.u8() == 1,
		}
	case TypeUnsubscribe:
		m = &Unsubscribe{Subscriber: vtime.SubscriberID(r.u32())}
	case TypeLeave:
		m = &Leave{Name: r.str()}
	default:
		return nil, fmt.Errorf("message: unknown type %d", buf[0])
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

func appendRange(buf []byte, r tick.Range) []byte {
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Start))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.End))
	return append(buf, byte(r.Kind))
}

func appendEvent(buf []byte, e *Event) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.Pubend))
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.Timestamp))
	buf = appendAttrs(buf, e.Attrs)
	return appendBytes(buf, e.Payload)
}

// AppendEvent exposes the event encoding for the pubend's persistent log.
func AppendEvent(buf []byte, e *Event) []byte { return appendEvent(buf, e) }

// DecodeEvent parses one event encoded by AppendEvent, returning the event
// and bytes consumed.
func DecodeEvent(buf []byte) (*Event, int, error) {
	r := &reader{buf: buf}
	e := r.event()
	if r.err != nil {
		return nil, 0, r.err
	}
	return e, r.off, nil
}

func appendString(buf []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendBytes(buf []byte, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func appendAttrs(buf []byte, attrs filter.Attributes) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(attrs)))
	// Deterministic order is not required on the wire; map order is fine.
	for name, v := range attrs {
		buf = appendString(buf, name)
		buf = append(buf, byte(v.Kind()))
		switch v.Kind() {
		case filter.KindString:
			buf = appendString(buf, v.Str())
		case filter.KindInt:
			buf = binary.BigEndian.AppendUint64(buf, uint64(v.IntVal()))
		case filter.KindFloat:
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v.FloatVal()))
		case filter.KindBool:
			if v.BoolVal() {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

// reader is a cursor over a message body that records the first error and
// short-circuits subsequent reads, so decode logic stays linear.
type reader struct {
	buf []byte
	off int
	err error
	// ref, when non-nil, is the pooled buffer backing buf: bytes() aliases
	// sub-slices of it instead of copying, and decoded events carry it for
	// retain/release (DecodeShared).
	ref *Ref
}

func (r *reader) fail() error {
	if r.err == nil {
		r.err = ErrTruncated
	}
	return r.err
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return false
	}
	return true
}

// checkCount guards slice pre-allocation against hostile counts: each
// element needs at least elemSize bytes, so a count implying more bytes
// than remain is corrupt.
func (r *reader) checkCount(n, elemSize int) bool {
	if r.err != nil {
		return false
	}
	if n < 0 || n*elemSize > len(r.buf)-r.off {
		r.err = ErrTruncated
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := int(r.u16())
	if !r.need(n) {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if !r.need(n) {
		return nil
	}
	if r.ref != nil {
		// Zero-copy: alias the frame buffer. The three-index slice pins
		// capacity so an append by a holder can never scribble past the
		// payload into neighboring frame bytes.
		b := r.buf[r.off : r.off+n : r.off+n]
		r.off += n
		return b
	}
	b := make([]byte, n)
	copy(b, r.buf[r.off:r.off+n])
	r.off += n
	return b
}

func (r *reader) tickRange() tick.Range {
	return tick.Range{
		Start: vtime.Timestamp(r.u64()),
		End:   vtime.Timestamp(r.u64()),
		Kind:  tick.Kind(r.u8()),
	}
}

func (r *reader) attrs() filter.Attributes {
	n := int(r.u16())
	if !r.checkCount(n, 4) {
		return nil
	}
	attrs := make(filter.Attributes, n)
	for i := 0; i < n; i++ {
		name := r.str()
		kind := filter.ValueKind(r.u8())
		switch kind {
		case filter.KindString:
			attrs[name] = filter.String(r.str())
		case filter.KindInt:
			attrs[name] = filter.Int(int64(r.u64()))
		case filter.KindFloat:
			attrs[name] = filter.Float(math.Float64frombits(r.u64()))
		case filter.KindBool:
			attrs[name] = filter.Bool(r.u8() == 1)
		default:
			if r.err == nil {
				r.err = fmt.Errorf("message: bad attribute kind %d", kind)
			}
			return nil
		}
	}
	return attrs
}

func (r *reader) event() *Event {
	return &Event{
		Pubend:    vtime.PubendID(r.u32()),
		Timestamp: vtime.Timestamp(r.u64()),
		Attrs:     r.attrs(),
		Payload:   r.bytes(),
		ref:       r.ref,
	}
}

func (r *reader) ct() *vtime.CheckpointToken {
	if r.err != nil {
		return vtime.NewCheckpointToken()
	}
	ct, n, err := vtime.DecodeCheckpointToken(r.buf[r.off:])
	if err != nil {
		r.err = err
		return vtime.NewCheckpointToken()
	}
	r.off += n
	return ct
}
