package matchidx

import (
	"math"
	"sort"
	"strings"

	"repro/internal/filter"
	"repro/internal/vtime"
)

// Covers reports whether subscription a covers subscription b: every event
// matching b is guaranteed to match a. The check is sound but incomplete
// (it may return false for a true cover — e.g. covers established only by
// combining several of b's predicates — never true for a false one), which
// is the safe direction: a missed cover costs an extra upstream
// announcement, a wrong one would lose events.
//
// a covers b when every predicate of a is implied by b's predicates on the
// same attribute (all predicate evaluations require the attribute to be
// present, so any predicate of b on the attribute implies existence).
func Covers(a, b *filter.Subscription) bool {
	return coversPreds(a.Predicates(), b.Predicates())
}

func coversPreds(apreds, bpreds []filter.Predicate) bool {
	for _, pa := range apreds {
		if !implied(pa, bpreds) {
			return false
		}
	}
	return true
}

// implied reports whether the conjunction of b's predicates implies pa.
func implied(pa filter.Predicate, bpreds []filter.Predicate) bool {
	for _, pb := range bpreds {
		if pb.Attr != pa.Attr {
			continue
		}
		if impliedBy(pa, pb) {
			return true
		}
	}
	return false
}

// impliedBy reports whether a single predicate pb implies pa (both on the
// same attribute).
func impliedBy(pa, pb filter.Predicate) bool {
	switch pa.Op {
	case filter.OpExists:
		// Every predicate fails on a missing attribute, so any pb
		// guarantees presence.
		return true
	case filter.OpEq:
		return pb.Op == filter.OpEq && pb.Val.Equal(pa.Val)
	case filter.OpNe:
		// If pa's excluded value fails pb, every value passing pb
		// differs from it (evaluation is congruent under Value.Equal).
		return !evalOn(pb, pa.Val)
	case filter.OpPrefix:
		if pa.Val.Kind() != filter.KindString {
			return false // pa can never hold; don't claim coverage
		}
		switch pb.Op {
		case filter.OpPrefix:
			return pb.Val.Kind() == filter.KindString &&
				strings.HasPrefix(pb.Val.Str(), pa.Val.Str())
		case filter.OpEq:
			return pb.Val.Kind() == filter.KindString &&
				strings.HasPrefix(pb.Val.Str(), pa.Val.Str())
		}
		return false
	case filter.OpLt, filter.OpLe, filter.OpGt, filter.OpGe:
		if pb.Op == filter.OpEq {
			// The only value passing pb is pb.Val; pa holds iff it
			// holds there.
			return evalOn(pa, pb.Val)
		}
		return rangeImplies(pa, pb)
	}
	return false
}

// rangeImplies reports whether range predicate pb implies range predicate
// pa: pb's half-space is contained in pa's.
func rangeImplies(pa, pb filter.Predicate) bool {
	lower := func(op filter.Op) bool { return op == filter.OpGt || op == filter.OpGe }
	if pb.Op != filter.OpLt && pb.Op != filter.OpLe && pb.Op != filter.OpGt && pb.Op != filter.OpGe {
		return false
	}
	// Value.Compare reports NaN as equal to every numeric, which would
	// let bound comparison claim covers that do not hold; refuse them.
	if isNaNVal(pa.Val) || isNaNVal(pb.Val) {
		return false
	}
	if lower(pa.Op) != lower(pb.Op) {
		return false // opposite directions never imply
	}
	cmp, comparable := pb.Val.Compare(pa.Val)
	if !comparable {
		return false // values passing pb are of a kind pa cannot order
	}
	if lower(pa.Op) {
		// pb: v >(=) vb implies pa: v >(=) va when vb > va, or vb == va
		// unless pb is >= while pa is > (v could equal the bound).
		return cmp > 0 || (cmp == 0 && !(pa.Op == filter.OpGt && pb.Op == filter.OpGe))
	}
	return cmp < 0 || (cmp == 0 && !(pa.Op == filter.OpLt && pb.Op == filter.OpLe))
}

// evalOn evaluates predicate p against a single attribute value (the
// attribute is present by construction).
func evalOn(p filter.Predicate, v filter.Value) bool {
	return p.Eval(filter.Attributes{p.Attr: v})
}

func isNaNVal(v filter.Value) bool {
	return v.Kind() == filter.KindFloat && math.IsNaN(v.FloatVal())
}

// --- Covering-set maintenance ---

// CoverOp is one upstream routing-table change produced by a CoverSet
// mutation: announce (Remove=false) or withdraw (Remove=true) the
// subscription under ID. Ops must be applied in order — re-expansion
// announces always precede the withdrawal of their former cover, so the
// upstream matcher never has a window where a live subscription is
// uncovered.
type CoverOp struct {
	ID     vtime.SubscriberID
	Filter string
	Remove bool
}

type coverEntry struct {
	sub       *filter.Subscription
	preds     []filter.Predicate
	src       string
	announced bool
	coveredBy vtime.SubscriberID // the announced cover hiding this entry
}

// CoverSet maintains the minimal announced subset of a broker's
// subscription population: a subscription is hidden when some announced
// subscription covers it, so intermediate brokers announce covering sets
// upstream instead of every downstream subscription (routing tables shrink
// with fan-in instead of growing). Not safe for concurrent use — the
// broker's control shard owns it.
type CoverSet struct {
	members map[vtime.SubscriberID]*coverEntry
	nAnn    int
}

// NewCoverSet returns an empty covering set.
func NewCoverSet() *CoverSet {
	return &CoverSet{members: make(map[vtime.SubscriberID]*coverEntry)}
}

// Len reports the total tracked subscription count.
func (c *CoverSet) Len() int { return len(c.members) }

// AnnouncedLen reports the size of the covering (announced) subset.
func (c *CoverSet) AnnouncedLen() int { return c.nAnn }

// Announced returns the current covering set as announce ops (for replaying
// onto a fresh upstream link), sorted by ID for determinism.
func (c *CoverSet) Announced() []CoverOp {
	out := make([]CoverOp, 0, c.nAnn)
	for id, e := range c.members {
		if e.announced {
			out = append(out, CoverOp{ID: id, Filter: e.src})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Add registers (or replaces) the subscription for id and returns the
// upstream ops the change requires. Re-adding an identical subscription is
// a no-op.
func (c *CoverSet) Add(id vtime.SubscriberID, sub *filter.Subscription) []CoverOp {
	src := sub.String()
	var ops []CoverOp
	if old, exists := c.members[id]; exists {
		if old.src == src {
			return nil
		}
		ops = c.Remove(id)
	}
	e := &coverEntry{sub: sub, preds: sub.Predicates(), src: src}
	c.members[id] = e
	// Hidden under an existing announced cover?
	if cover, ok := c.findCover(id, e.preds); ok {
		e.coveredBy = cover
		return ops
	}
	// Announce it, then hide any announced entries it now covers. The
	// announce is emitted first so the upstream matcher gains the cover
	// before losing the covered.
	e.announced = true
	c.nAnn++
	ops = append(ops, CoverOp{ID: id, Filter: src})
	for oid, oe := range c.members {
		if oid == id || !oe.announced || !coversPreds(e.preds, oe.preds) {
			continue
		}
		oe.announced = false
		oe.coveredBy = id
		c.nAnn--
		// Entries the demoted cover was hiding are re-homed under the
		// new cover (coverage is transitive).
		for _, he := range c.members {
			if !he.announced && he.coveredBy == oid {
				he.coveredBy = id
			}
		}
		ops = append(ops, CoverOp{ID: oid, Remove: true})
	}
	return ops
}

// Remove unregisters the subscription for id and returns the upstream ops
// the change requires. When an announced cover is removed, every entry it
// was hiding is re-homed — under another announced cover when one exists,
// otherwise by promotion to announced — and all promotion announces are
// emitted before the cover's withdrawal, so downstream subscriptions are
// never left uncovered upstream.
func (c *CoverSet) Remove(id vtime.SubscriberID) []CoverOp {
	e, ok := c.members[id]
	if !ok {
		return nil
	}
	delete(c.members, id)
	if !e.announced {
		return nil
	}
	c.nAnn--
	var ops []CoverOp
	// Collect the orphans deterministically.
	var orphans []vtime.SubscriberID
	for oid, oe := range c.members {
		if !oe.announced && oe.coveredBy == id {
			orphans = append(orphans, oid)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, oid := range orphans {
		oe := c.members[oid]
		if cover, found := c.findCover(oid, oe.preds); found {
			oe.coveredBy = cover
			continue
		}
		oe.announced = true
		c.nAnn++
		ops = append(ops, CoverOp{ID: oid, Filter: oe.src})
		// The promoted orphan may cover other still-unprocessed
		// orphans; findCover will pick it up for them.
	}
	ops = append(ops, CoverOp{ID: id, Remove: true})
	return ops
}

// findCover scans the announced set for an entry covering preds.
func (c *CoverSet) findCover(self vtime.SubscriberID, preds []filter.Predicate) (vtime.SubscriberID, bool) {
	for oid, oe := range c.members {
		if oid == self || !oe.announced {
			continue
		}
		if coversPreds(oe.preds, preds) {
			return oid, true
		}
	}
	return 0, false
}
