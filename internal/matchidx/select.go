package matchidx

import "repro/internal/filter"

// Engine selector names accepted by MatcherFor (broker -match-engine flag,
// core.Config.MatchEngine, broker.Config.MatchEngine).
const (
	// EngineIndexed is the counting-based attribute index (the default).
	EngineIndexed = "indexed"
	// EngineLinear is the brute-force scan — the test oracle, and an
	// escape hatch if the index ever misbehaves in production.
	EngineLinear = "linear"
)

// MatcherFor returns a Matcher on the engine selected by name: "linear"
// picks the brute-force oracle; "" or "indexed" pick the counting index.
// Unknown names fall back to the index (misconfiguration should not
// silently degrade matching to a linear scan).
func MatcherFor(name string) *filter.Matcher {
	if name == EngineLinear {
		return filter.NewMatcher()
	}
	return NewMatcher()
}
