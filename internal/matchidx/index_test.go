package matchidx

import (
	"fmt"
	"testing"

	"repro/internal/filter"
	"repro/internal/vtime"
)

func ev(pairs ...any) filter.Attributes {
	attrs := filter.Attributes{}
	for i := 0; i < len(pairs); i += 2 {
		attrs[pairs[i].(string)] = pairs[i+1].(filter.Value)
	}
	return attrs
}

func ids(xs ...int) []vtime.SubscriberID {
	out := make([]vtime.SubscriberID, len(xs))
	for i, x := range xs {
		out[i] = vtime.SubscriberID(x)
	}
	return out
}

func expectMatch(t *testing.T, m *filter.Matcher, attrs filter.Attributes, want []vtime.SubscriberID) {
	t.Helper()
	got := m.Match(attrs)
	if len(got) != len(want) {
		t.Fatalf("match %v: got %v, want %v", attrs, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %v: got %v, want %v", attrs, got, want)
		}
	}
	if want := len(want) > 0; m.MatchesAny(attrs) != want {
		t.Fatalf("MatchesAny(%v) != %v", attrs, want)
	}
}

func TestIndexOperators(t *testing.T) {
	m := NewMatcher()
	m.Add(1, filter.MustParse(`topic = "trades"`))
	m.Add(2, filter.MustParse(`price > 10`))
	m.Add(3, filter.MustParse(`price <= 10`))
	m.Add(4, filter.MustParse(`prefix(sym, "AC")`))
	m.Add(5, filter.MustParse(`exists(sym)`))
	m.Add(6, filter.MustParse(`price != 10`))
	m.Add(7, filter.MustParse(`true`))
	m.Add(8, filter.MustParse(`topic = "trades" and price >= 10 and price < 20`))
	m.Add(9, filter.MustParse(`live = true`))

	expectMatch(t, m, ev("topic", filter.String("trades"), "price", filter.Int(15)),
		ids(1, 2, 6, 7, 8))
	expectMatch(t, m, ev("price", filter.Int(10)), ids(3, 7))
	expectMatch(t, m, ev("sym", filter.String("ACME"), "price", filter.Float(9.5)),
		ids(3, 4, 5, 6, 7))
	expectMatch(t, m, ev("sym", filter.String("ZB")), ids(5, 7))
	expectMatch(t, m, ev("live", filter.Bool(true)), ids(7, 9))
	expectMatch(t, m, ev("live", filter.Bool(false)), ids(7))
	// Numeric cross-kind equality: int event vs float bound and vice versa.
	m.Add(10, filter.MustParse(`price = 12.0`))
	expectMatch(t, m, ev("price", filter.Int(12)), ids(2, 6, 7, 10))
}

func TestIndexRemoveAndReplace(t *testing.T) {
	m := NewMatcher()
	m.Add(1, filter.MustParse(`a = 1`))
	m.Add(2, filter.MustParse(`a > 0`))
	expectMatch(t, m, ev("a", filter.Int(1)), ids(1, 2))

	m.Remove(1)
	expectMatch(t, m, ev("a", filter.Int(1)), ids(2))
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	// Replacing changes the indexed filter atomically.
	m.Add(2, filter.MustParse(`a < 0`))
	expectMatch(t, m, ev("a", filter.Int(1)), nil)
	expectMatch(t, m, ev("a", filter.Int(-4)), ids(2))
	// Removing an unknown id is a no-op.
	m.Remove(99)
	expectMatch(t, m, ev("a", filter.Int(-4)), ids(2))
}

// TestIndexSlotRecycling churns enough to force slot reuse and rebuilds,
// checking stale postings never resurrect removed subscriptions.
func TestIndexSlotRecycling(t *testing.T) {
	m := NewMatcher()
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			m.Add(vtime.SubscriberID(i), filter.MustParse(
				fmt.Sprintf(`a > %d and b = "x%d"`, i, round)))
		}
		attrs := ev("a", filter.Int(100), "b", filter.String(fmt.Sprintf("x%d", round)))
		if got := m.Match(attrs); len(got) != 20 {
			t.Fatalf("round %d: got %d matches, want 20", round, len(got))
		}
		stale := ev("a", filter.Int(100), "b", filter.String(fmt.Sprintf("x%d", round-1)))
		if got := m.Match(stale); len(got) != 0 {
			t.Fatalf("round %d: stale filters matched: %v", round, got)
		}
		for i := 0; i < 20; i++ {
			m.Remove(vtime.SubscriberID(i))
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after full churn, want 0", m.Len())
	}
}

// TestIndexMatchAppendAllocs guards the zero-alloc contract on the fan-out
// path: with a reused destination buffer, matching allocates nothing.
func TestIndexMatchAppendAllocs(t *testing.T) {
	m := NewMatcher()
	for i := 0; i < 256; i++ {
		m.Add(vtime.SubscriberID(i), filter.MustParse(
			fmt.Sprintf(`group = "g%d" and price > %d and prefix(sym, "S%d")`, i%8, i%50, i%4)))
	}
	attrs := ev("group", filter.String("g3"), "price", filter.Int(40),
		"sym", filter.String("S3X"))
	buf := m.Match(attrs)
	if len(buf) == 0 {
		t.Fatal("expected matches")
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf = m.MatchAppend(buf[:0], attrs)
	})
	if allocs > 0 {
		t.Fatalf("MatchAppend allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkIndexedMatch(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("%dsubs", n), func(b *testing.B) {
			m := NewMatcher()
			for i := 0; i < n; i++ {
				m.Add(vtime.SubscriberID(i), filter.MustParse(fmt.Sprintf(
					`group = "g%d" and price > %d`, i%64, i%50)))
			}
			attrs := ev("group", filter.String("g1"), "price", filter.Int(30))
			var buf []vtime.SubscriberID
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = m.MatchAppend(buf[:0], attrs)
			}
		})
	}
}
