package matchidx

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/filter"
	"repro/internal/vtime"
)

// randPredicate emits one random predicate clause over a deliberately tiny
// attribute/value universe so collisions (and therefore matches, covers and
// index bucket sharing) are frequent.
func randPredicate(r *rand.Rand) string {
	attr := string(rune('a' + r.Intn(4)))
	switch r.Intn(8) {
	case 0:
		return fmt.Sprintf("exists(%s)", attr)
	case 1:
		return fmt.Sprintf("prefix(%s, %q)", attr, "xyz"[:1+r.Intn(3)])
	case 2:
		return fmt.Sprintf("%s = %q", attr, randStr(r))
	case 3:
		if r.Intn(2) == 0 {
			return fmt.Sprintf("%s = %d", attr, r.Intn(10))
		}
		return fmt.Sprintf("%s = %.1f", attr, float64(r.Intn(20))/2)
	case 4:
		return fmt.Sprintf("%s != %d", attr, r.Intn(10))
	case 5:
		return fmt.Sprintf("%s %s %d", attr, randCmp(r), r.Intn(10))
	case 6:
		return fmt.Sprintf("%s %s %.1f", attr, randCmp(r), float64(r.Intn(20))/2)
	default:
		return fmt.Sprintf("%s %s %q", attr, randCmp(r), randStr(r))
	}
}

func randCmp(r *rand.Rand) string {
	return []string{"<", "<=", ">", ">="}[r.Intn(4)]
}

func randStr(r *rand.Rand) string {
	pool := []string{"x", "xy", "xyz", "y", "yz", "z", ""}
	return pool[r.Intn(len(pool))]
}

func randSubscription(r *rand.Rand) *filter.Subscription {
	n := r.Intn(4)
	if n == 0 {
		return filter.MustParse("true")
	}
	clauses := make([]string, n)
	for i := range clauses {
		clauses[i] = randPredicate(r)
	}
	return filter.MustParse(strings.Join(clauses, " and "))
}

func randEvent(r *rand.Rand) filter.Attributes {
	attrs := filter.Attributes{}
	for _, a := range []string{"a", "b", "c", "d"} {
		switch r.Intn(5) {
		case 0: // absent
		case 1:
			attrs[a] = filter.Int(int64(r.Intn(10)))
		case 2:
			attrs[a] = filter.Float(float64(r.Intn(20)) / 2)
		case 3:
			attrs[a] = filter.String(randStr(r))
		case 4:
			attrs[a] = filter.Bool(r.Intn(2) == 0)
		}
	}
	return attrs
}

// TestOracleEquivalence drives the indexed engine and the brute-force linear
// oracle through identical randomized Add/Remove churn, asserting the two
// return exactly the same sorted ID set for every probe event. Match probes
// run from concurrent goroutines so -race exercises the facade RLock +
// pooled-scratch read path.
func TestOracleEquivalence(t *testing.T) {
	const (
		rounds   = 300
		probes   = 20
		popLimit = 120
	)
	r := rand.New(rand.NewSource(61))
	indexed := NewMatcher()
	oracle := filter.NewMatcher() // linear engine
	live := make(map[vtime.SubscriberID]string)
	nextID := vtime.SubscriberID(1)

	for round := 0; round < rounds; round++ {
		// Mutate: mostly adds while small, mostly removes while large.
		muts := 1 + r.Intn(8)
		for m := 0; m < muts; m++ {
			if len(live) > 0 && r.Intn(popLimit) < len(live) {
				var victim vtime.SubscriberID
				k := r.Intn(len(live))
				for id := range live {
					if k == 0 {
						victim = id
						break
					}
					k--
				}
				delete(live, victim)
				indexed.Remove(victim)
				oracle.Remove(victim)
				continue
			}
			sub := randSubscription(r)
			id := nextID
			if len(live) > 0 && r.Intn(4) == 0 {
				// Replace an existing id with a different filter.
				for lid := range live {
					id = lid
					break
				}
			} else {
				nextID++
			}
			live[id] = sub.String()
			indexed.Add(id, sub)
			oracle.Add(id, sub)
		}

		events := make([]filter.Attributes, probes)
		for i := range events {
			events[i] = randEvent(r)
		}
		var wg sync.WaitGroup
		errs := make([]string, probes)
		for i := range events {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got := indexed.Match(events[i])
				want := oracle.Match(events[i])
				if len(got) != len(want) {
					errs[i] = fmt.Sprintf("event %v: indexed %v, oracle %v", events[i], got, want)
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errs[i] = fmt.Sprintf("event %v: indexed %v, oracle %v", events[i], got, want)
						return
					}
				}
				if indexed.MatchesAny(events[i]) != (len(want) > 0) {
					errs[i] = fmt.Sprintf("event %v: MatchesAny disagrees with oracle set %v", events[i], want)
				}
			}(i)
		}
		wg.Wait()
		for _, e := range errs {
			if e != "" {
				t.Fatalf("round %d: %s (population %d)", round, e, len(live))
			}
		}
	}
	if indexed.Len() != oracle.Len() || indexed.Len() != len(live) {
		t.Fatalf("population drift: indexed %d, oracle %d, live %d",
			indexed.Len(), oracle.Len(), len(live))
	}
}

// FuzzOracleEquivalence feeds arbitrary bytes as a mutation/probe script; the
// corpus seeds cover each operator family.
func FuzzOracleEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0xff, 0x00, 0x80, 0x41, 0x17, 0x23})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) == 0 {
			return
		}
		var seed int64
		for _, b := range script {
			seed = seed*131 + int64(b)
		}
		r := rand.New(rand.NewSource(seed))
		indexed := NewMatcher()
		oracle := filter.NewMatcher()
		next := vtime.SubscriberID(1)
		var idsInUse []vtime.SubscriberID
		for _, b := range script {
			switch {
			case b%3 != 0 || len(idsInUse) == 0: // add
				sub := randSubscription(r)
				indexed.Add(next, sub)
				oracle.Add(next, sub)
				idsInUse = append(idsInUse, next)
				next++
			default: // remove
				i := int(b/3) % len(idsInUse)
				indexed.Remove(idsInUse[i])
				oracle.Remove(idsInUse[i])
				idsInUse = append(idsInUse[:i], idsInUse[i+1:]...)
			}
			evt := randEvent(r)
			got, want := indexed.Match(evt), oracle.Match(evt)
			if len(got) != len(want) {
				t.Fatalf("event %v: indexed %v, oracle %v", evt, got, want)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("event %v: indexed %v, oracle %v", evt, got, want)
				}
			}
		}
	})
}
