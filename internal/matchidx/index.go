// Package matchidx implements the counting-based, attribute-indexed
// matching engine behind filter.Matcher, plus the covering/subsumption
// algebra intermediate brokers use to shrink their upstream routing tables
// (DESIGN §2.9).
//
// Instead of scanning subscriptions per event, every predicate of every
// subscription is placed in a per-attribute index keyed by what an event
// value must look like to satisfy it:
//
//   - equality predicates land in hash buckets (separate string / numeric /
//     bool buckets so lookups never allocate a value key);
//   - range predicates land in sorted bound lists — lower bounds (>, >=)
//     and upper bounds (<, <=), numeric and string separately — probed by
//     binary search;
//   - prefix(attr, s) predicates land in a byte trie walked along the
//     event's string value;
//   - exists(attr) predicates land in a per-attribute presence list;
//   - != and otherwise unindexable predicates become per-subscription
//     residuals, verified only on candidate subscriptions.
//
// Each subscription records how many of its predicates are indexed; an
// event matches when its satisfied-predicate count reaches that total and
// the residuals verify (the counting algorithm of Yan/Garcia-Molina and the
// Siena/Gryphon line of matchers). Match cost is proportional to the number
// of postings the event's attributes touch, not to the number of
// subscriptions.
package matchidx

import (
	"math"
	"sort"
	"sync"

	"repro/internal/filter"
	"repro/internal/vtime"
)

// New returns the counting-index matching engine, for use with
// filter.NewMatcherWith. NewMatcher is the one-call convenience.
func New() filter.Engine { return newIndex() }

// NewMatcher returns a filter.Matcher backed by the counting index.
func NewMatcher() *filter.Matcher { return filter.NewMatcherWith(New()) }

// slotRef identifies one subscription slot at one generation. Postings
// store refs, not slot numbers: freeing a slot bumps its generation, so
// stale postings left behind in index structures can never count toward a
// reused slot (they are skipped and reclaimed by the next rebuild).
type slotRef struct {
	slot uint32
	gen  uint32
}

// slotInfo is the per-subscription record of the counting vector.
type slotInfo struct {
	id       vtime.SubscriberID
	sub      *filter.Subscription
	need     int32              // indexed-predicate count to reach
	residual []filter.Predicate // verified per candidate, not indexed
	gen      uint32
	live     bool
	postings int32 // posting entries this slot placed in the index
}

// Index is the counting engine. It implements filter.Engine; all writes
// are serialized by the facade, reads may run concurrently (per-query
// scratch comes from a pool).
type Index struct {
	attrs map[string]*attrIndex
	slots []slotInfo
	ids   map[vtime.SubscriberID]uint32
	free  []uint32
	// always holds subscriptions with no indexed predicates (match-all,
	// or residual-only, e.g. pure != filters): they are candidates for
	// every event.
	always []slotRef

	livePostings int64
	deadPostings int64

	scratch sync.Pool // *matchScratch
}

func newIndex() *Index {
	x := &Index{
		attrs: make(map[string]*attrIndex),
		ids:   make(map[vtime.SubscriberID]uint32),
	}
	x.scratch.New = func() any { return &matchScratch{} }
	return x
}

// attrIndex holds every indexed predicate over one attribute.
type attrIndex struct {
	eqStr  map[string][]slotRef
	eqNum  map[float64][]slotRef
	eqBool [2][]slotRef
	exists []slotRef
	lowNum bounds[float64] // > and >= predicates (numeric)
	hiNum  bounds[float64] // < and <= predicates (numeric)
	lowStr bounds[string]  // > and >= predicates (string)
	hiStr  bounds[string]  // < and <= predicates (string)
	prefix *trieNode
}

func newAttrIndex() *attrIndex {
	return &attrIndex{
		eqStr: make(map[string][]slotRef),
		eqNum: make(map[float64][]slotRef),
	}
}

// --- Sorted bound lists ---

type boundEntry[T float64 | string] struct {
	bound  T
	strict bool // true for > and < (excludes equality)
	ref    slotRef
}

// bounds is a sorted base array plus a small unsorted delta; inserts append
// to the delta and merge once it grows past mergeAt, so N inserts cost
// O(N log N) amortized instead of O(N²) memmove. Queries binary-search the
// base and scan the delta.
type bounds[T float64 | string] struct {
	base  []boundEntry[T] // sorted ascending by bound
	delta []boundEntry[T]
}

const mergeAt = 128

func (b *bounds[T]) add(e boundEntry[T]) {
	b.delta = append(b.delta, e)
	if len(b.delta) >= mergeAt {
		b.merge()
	}
}

func (b *bounds[T]) merge() {
	if len(b.delta) == 0 {
		return
	}
	sort.Slice(b.delta, func(i, j int) bool { return b.delta[i].bound < b.delta[j].bound })
	merged := make([]boundEntry[T], 0, len(b.base)+len(b.delta))
	i, j := 0, 0
	for i < len(b.base) && j < len(b.delta) {
		if b.base[i].bound <= b.delta[j].bound {
			merged = append(merged, b.base[i])
			i++
		} else {
			merged = append(merged, b.delta[j])
			j++
		}
	}
	merged = append(merged, b.base[i:]...)
	merged = append(merged, b.delta[j:]...)
	b.base, b.delta = merged, b.delta[:0]
}

func (b *bounds[T]) len() int { return len(b.base) + len(b.delta) }

// lowerHits visits every lower-bound predicate satisfied by event value v:
// bound < v, or bound == v for the non-strict (>=) form.
func (b *bounds[T]) lowerHits(v T, fn func(slotRef)) {
	i := sort.Search(len(b.base), func(i int) bool { return b.base[i].bound > v })
	for k := 0; k < i; k++ {
		if e := &b.base[k]; e.bound < v || !e.strict {
			fn(e.ref)
		}
	}
	for k := range b.delta {
		if e := &b.delta[k]; e.bound < v || (e.bound == v && !e.strict) {
			fn(e.ref)
		}
	}
}

// upperHits visits every upper-bound predicate satisfied by v: bound > v,
// or bound == v for the non-strict (<=) form.
func (b *bounds[T]) upperHits(v T, fn func(slotRef)) {
	i := sort.Search(len(b.base), func(i int) bool { return b.base[i].bound >= v })
	for k := i; k < len(b.base); k++ {
		if e := &b.base[k]; e.bound > v || !e.strict {
			fn(e.ref)
		}
	}
	for k := range b.delta {
		if e := &b.delta[k]; e.bound > v || (e.bound == v && !e.strict) {
			fn(e.ref)
		}
	}
}

// --- Prefix trie ---

type trieNode struct {
	children map[byte]*trieNode
	slots    []slotRef
}

func (n *trieNode) insert(prefix string, ref slotRef) {
	for i := 0; i < len(prefix); i++ {
		if n.children == nil {
			n.children = make(map[byte]*trieNode)
		}
		child := n.children[prefix[i]]
		if child == nil {
			child = &trieNode{}
			n.children[prefix[i]] = child
		}
		n = child
	}
	n.slots = append(n.slots, ref)
}

// walk visits the slots of every registered prefix of s (including the
// empty prefix at the root).
func (n *trieNode) walk(s string, fn func(slotRef)) {
	for _, ref := range n.slots {
		fn(ref)
	}
	for i := 0; i < len(s); i++ {
		n = n.children[s[i]]
		if n == nil {
			return
		}
		for _, ref := range n.slots {
			fn(ref)
		}
	}
}

// --- Counting scratch ---

// matchScratch is the per-query counting state: counts[slot] is valid only
// when mark[slot] == gen, so queries never clear the arrays (the classic
// epoch trick). One scratch serves one query; concurrent queries each take
// their own from the pool.
type matchScratch struct {
	counts []int32
	mark   []uint32
	gen    uint32
}

func (sc *matchScratch) begin(n int) {
	if len(sc.counts) < n {
		counts := make([]int32, n+n/2+8)
		copy(counts, sc.counts)
		sc.counts = counts
		mark := make([]uint32, cap(counts))
		copy(mark, sc.mark)
		sc.mark = mark[:len(counts)]
	}
	sc.gen++
	if sc.gen == 0 { // wrapped: stale marks could collide
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.gen = 1
	}
}

// bump increments slot's satisfied count and returns the new value.
func (sc *matchScratch) bump(slot uint32) int32 {
	if sc.mark[slot] != sc.gen {
		sc.mark[slot] = sc.gen
		sc.counts[slot] = 1
		return 1
	}
	sc.counts[slot]++
	return sc.counts[slot]
}

// --- filter.Engine implementation ---

// Add indexes sub under id (facade guarantees id is fresh).
func (x *Index) Add(id vtime.SubscriberID, sub *filter.Subscription) {
	slot := x.alloc()
	si := &x.slots[slot]
	ref := slotRef{slot: slot, gen: si.gen}
	si.id = id
	si.sub = sub
	si.live = true
	x.indexSub(si, ref, sub.Predicates())
	x.livePostings += int64(si.postings)
	x.ids[id] = slot
}

// indexSub populates the index structures for one subscription, choosing
// which predicates to count and which to verify as residuals.
//
// Equality anchoring: when a subscription has at least one indexable
// equality predicate, ONLY its equality predicates are indexed and
// everything else becomes residual. Equality buckets are the most selective
// structures by far, so the subscription surfaces as a candidate only on
// exact bucket hits — whereas indexing its range predicates too would cost
// a counting bump on every event whose value lands in the half-space (for
// a population of range riders, close to half the population per event).
// Residual verification on the few bucket hits is far cheaper than those
// bumps at scale.
func (x *Index) indexSub(si *slotInfo, ref slotRef, preds []filter.Predicate) {
	si.need = 0
	si.residual = nil
	si.postings = 0
	anchored := false
	for _, p := range preds {
		if eqIndexable(p) {
			anchored = true
			break
		}
	}
	for _, p := range preds {
		if anchored && !eqIndexable(p) {
			si.residual = append(si.residual, p)
			continue
		}
		if x.indexPredicate(p, ref) {
			si.need++
			si.postings++
		} else {
			si.residual = append(si.residual, p)
		}
	}
	if si.need == 0 {
		x.always = append(x.always, ref)
		si.postings++
	}
}

// eqIndexable reports whether p is an equality predicate the index can
// bucket (everything except NaN, which equals nothing and cannot be a map
// key).
func eqIndexable(p filter.Predicate) bool {
	if p.Op != filter.OpEq {
		return false
	}
	switch p.Val.Kind() {
	case filter.KindString, filter.KindBool:
		return true
	case filter.KindInt, filter.KindFloat:
		return !math.IsNaN(numValue(p.Val))
	}
	return false
}

// Remove unindexes id. Postings are not chased down: bumping the slot's
// generation invalidates every ref pointing at it, and accumulated garbage
// is reclaimed by rebuild once dead postings outnumber live ones.
func (x *Index) Remove(id vtime.SubscriberID, _ *filter.Subscription) {
	slot, ok := x.ids[id]
	if !ok {
		return
	}
	delete(x.ids, id)
	si := &x.slots[slot]
	si.live = false
	si.gen++
	si.sub = nil
	si.residual = nil
	x.deadPostings += int64(si.postings)
	x.livePostings -= int64(si.postings)
	si.postings = 0
	x.free = append(x.free, slot)
	if x.deadPostings > 64 && x.deadPostings > x.livePostings {
		x.rebuild()
	}
}

// MatchAppend implements filter.Engine.
func (x *Index) MatchAppend(dst []vtime.SubscriberID, attrs filter.Attributes) ([]vtime.SubscriberID, int) {
	cand := 0
	x.match(attrs, func(si *slotInfo) bool {
		cand++
		if residualsHold(si, attrs) {
			dst = append(dst, si.id)
		}
		return false
	})
	return dst, cand
}

// MatchesAny implements filter.Engine.
func (x *Index) MatchesAny(attrs filter.Attributes) (bool, int) {
	cand, any := 0, false
	x.match(attrs, func(si *slotInfo) bool {
		cand++
		if residualsHold(si, attrs) {
			any = true
			return true
		}
		return false
	})
	return any, cand
}

func residualsHold(si *slotInfo, attrs filter.Attributes) bool {
	for _, p := range si.residual {
		if !p.Eval(attrs) {
			return false
		}
	}
	return true
}

// match runs the counting algorithm, invoking each for every candidate
// subscription (one whose satisfied count reached its need); each returns
// true to stop early.
func (x *Index) match(attrs filter.Attributes, each func(*slotInfo) bool) {
	for _, ref := range x.always {
		if si := x.slot(ref); si != nil && each(si) {
			return
		}
	}
	sc := x.scratch.Get().(*matchScratch)
	defer x.scratch.Put(sc)
	sc.begin(len(x.slots))
	stop := false
	hit := func(ref slotRef) {
		if stop {
			return
		}
		si := x.slot(ref)
		if si == nil {
			return
		}
		if sc.bump(ref.slot) == si.need {
			stop = each(si)
		}
	}
	for attr, v := range attrs {
		ai := x.attrs[attr]
		if ai == nil {
			continue
		}
		for _, ref := range ai.exists {
			hit(ref)
			if stop {
				return
			}
		}
		switch v.Kind() {
		case filter.KindString:
			s := v.Str()
			for _, ref := range ai.eqStr[s] {
				hit(ref)
			}
			ai.lowStr.lowerHits(s, hit)
			ai.hiStr.upperHits(s, hit)
			if ai.prefix != nil {
				ai.prefix.walk(s, hit)
			}
		case filter.KindInt, filter.KindFloat:
			f := numValue(v)
			if math.IsNaN(f) {
				break // NaN satisfies no comparison (matches Eval)
			}
			for _, ref := range ai.eqNum[f] {
				hit(ref)
			}
			ai.lowNum.lowerHits(f, hit)
			ai.hiNum.upperHits(f, hit)
		case filter.KindBool:
			b := 0
			if v.BoolVal() {
				b = 1
			}
			for _, ref := range ai.eqBool[b] {
				hit(ref)
			}
		}
		if stop {
			return
		}
	}
}

// slot resolves a posting ref, returning nil for stale (removed or
// recycled) slots.
func (x *Index) slot(ref slotRef) *slotInfo {
	si := &x.slots[ref.slot]
	if !si.live || si.gen != ref.gen {
		return nil
	}
	return si
}

func (x *Index) alloc() uint32 {
	if n := len(x.free); n > 0 {
		slot := x.free[n-1]
		x.free = x.free[:n-1]
		return slot
	}
	x.slots = append(x.slots, slotInfo{})
	return uint32(len(x.slots) - 1)
}

// indexPredicate places p in the per-attribute index, reporting false when
// the predicate is not indexable (it becomes a residual: != always, and
// any predicate whose value the index cannot order — bool ranges, NaN
// bounds, non-string prefixes — which per Eval semantics can never hold
// and so fails at residual verification).
func (x *Index) indexPredicate(p filter.Predicate, ref slotRef) bool {
	switch p.Op {
	case filter.OpExists:
		ai := x.attr(p.Attr)
		ai.exists = append(ai.exists, ref)
		return true
	case filter.OpEq:
		switch p.Val.Kind() {
		case filter.KindString:
			ai := x.attr(p.Attr)
			ai.eqStr[p.Val.Str()] = append(ai.eqStr[p.Val.Str()], ref)
			return true
		case filter.KindInt, filter.KindFloat:
			f := numValue(p.Val)
			if math.IsNaN(f) {
				return false // NaN equals nothing; NaN map keys are unretrievable
			}
			ai := x.attr(p.Attr)
			ai.eqNum[f] = append(ai.eqNum[f], ref)
			return true
		case filter.KindBool:
			b := 0
			if p.Val.BoolVal() {
				b = 1
			}
			ai := x.attr(p.Attr)
			ai.eqBool[b] = append(ai.eqBool[b], ref)
			return true
		}
		return false
	case filter.OpPrefix:
		if p.Val.Kind() != filter.KindString {
			return false
		}
		ai := x.attr(p.Attr)
		if ai.prefix == nil {
			ai.prefix = &trieNode{}
		}
		ai.prefix.insert(p.Val.Str(), ref)
		return true
	case filter.OpGt, filter.OpGe, filter.OpLt, filter.OpLe:
		strict := p.Op == filter.OpGt || p.Op == filter.OpLt
		lower := p.Op == filter.OpGt || p.Op == filter.OpGe
		switch p.Val.Kind() {
		case filter.KindInt, filter.KindFloat:
			f := numValue(p.Val)
			if math.IsNaN(f) {
				return false // would corrupt the sorted order
			}
			ai := x.attr(p.Attr)
			if lower {
				ai.lowNum.add(boundEntry[float64]{bound: f, strict: strict, ref: ref})
			} else {
				ai.hiNum.add(boundEntry[float64]{bound: f, strict: strict, ref: ref})
			}
			return true
		case filter.KindString:
			s := p.Val.Str()
			ai := x.attr(p.Attr)
			if lower {
				ai.lowStr.add(boundEntry[string]{bound: s, strict: strict, ref: ref})
			} else {
				ai.hiStr.add(boundEntry[string]{bound: s, strict: strict, ref: ref})
			}
			return true
		}
		return false
	default: // OpNe and anything unknown: residual verification
		return false
	}
}

func (x *Index) attr(name string) *attrIndex {
	ai := x.attrs[name]
	if ai == nil {
		ai = newAttrIndex()
		x.attrs[name] = ai
	}
	return ai
}

// rebuild re-indexes every live subscription into fresh structures,
// dropping the stale postings left behind by Remove. Slot numbers and
// generations are preserved, so pooled scratch sizing stays valid.
func (x *Index) rebuild() {
	x.attrs = make(map[string]*attrIndex)
	x.always = x.always[:0]
	x.livePostings, x.deadPostings = 0, 0
	for _, slot := range x.ids {
		si := &x.slots[slot]
		ref := slotRef{slot: slot, gen: si.gen}
		x.indexSub(si, ref, si.sub.Predicates())
		x.livePostings += int64(si.postings)
	}
}

// numValue returns the numeric payload as float64 (the cross-kind numeric
// comparison domain of filter.Value).
func numValue(v filter.Value) float64 {
	if v.Kind() == filter.KindFloat {
		return v.FloatVal()
	}
	return float64(v.IntVal())
}
