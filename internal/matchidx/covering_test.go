package matchidx

import (
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/vtime"
)

func TestCoversBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{`true`, `price > 10`, true},
		{`price > 10`, `true`, false},
		{`price > 10`, `price > 20`, true},
		{`price > 20`, `price > 10`, false},
		{`price >= 10`, `price > 10`, true},
		{`price > 10`, `price >= 10`, false},
		{`price > 10`, `price >= 11`, true},
		{`price < 5`, `price <= 4`, true},
		{`price <= 5`, `price < 5`, true},
		{`price > 10`, `price = 15`, true},
		{`price > 10`, `price = 5`, false},
		{`exists(price)`, `price = 5`, true},
		{`exists(price)`, `exists(price)`, true},
		{`exists(price)`, `sym = "x"`, false},
		{`prefix(sym, "AC")`, `prefix(sym, "ACME")`, true},
		{`prefix(sym, "ACME")`, `prefix(sym, "AC")`, false},
		{`prefix(sym, "AC")`, `sym = "ACME"`, true},
		// prefix only matches string values; exists admits any kind.
		{`prefix(sym, "")`, `exists(sym)`, false},
		{`prefix(sym, "")`, `prefix(sym, "A")`, true},
		{`sym != "x"`, `sym = "y"`, true},
		{`sym != "x"`, `sym = "x"`, false},
		{`price != 3`, `price > 5`, true},
		{`price != 7`, `price > 5`, false},
		{`topic = "t"`, `topic = "t" and price > 1`, true},
		{`topic = "t" and price > 1`, `topic = "t"`, false},
		{`topic = "t" and price > 1`, `topic = "t" and price > 5 and exists(sym)`, true},
		// Same bound, different kinds: numeric cross-kind equality holds.
		{`price > 10`, `price > 10.5`, true},
		{`price >= 10.0`, `price > 10`, true},
		// String ranges order lexically.
		{`sym < "m"`, `sym <= "a"`, true},
		{`sym < "m"`, `sym < "z"`, false},
		// Mixed-kind range bounds are incomparable: no cover claimed.
		{`price > 10`, `price > "x"`, false},
	}
	for _, tc := range cases {
		a, b := filter.MustParse(tc.a), filter.MustParse(tc.b)
		if got := Covers(a, b); got != tc.want {
			t.Errorf("Covers(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestCoversSoundness is the property that matters for routing correctness:
// whenever Covers(a, b) claims a cover, every randomly generated event
// matching b must match a. (Completeness is not required — a false negative
// only costs an extra announcement.)
func TestCoversSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	checked := 0
	for i := 0; i < 4000; i++ {
		a, b := randSubscription(r), randSubscription(r)
		if !Covers(a, b) {
			continue
		}
		checked++
		for j := 0; j < 50; j++ {
			evt := randEvent(r)
			if b.Matches(evt) && !a.Matches(evt) {
				t.Fatalf("Covers(%q, %q) claimed, but event %v matches b and not a",
					a.String(), b.String(), evt)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d cover pairs generated; generator too sparse to be meaningful", checked)
	}
	t.Logf("verified %d claimed covers", checked)
}

// applyOps plays CoverOps onto a matcher standing in for the upstream
// broker's view of this broker.
func applyOps(t *testing.T, up *filter.Matcher, ops []CoverOp) {
	t.Helper()
	for _, op := range ops {
		if op.Remove {
			up.Remove(op.ID)
		} else {
			up.Add(op.ID, filter.MustParse(op.Filter))
		}
	}
}

// checkCovered asserts the upstream view still covers every live member:
// any event matching a member also matches some announced subscription.
func checkCovered(t *testing.T, r *rand.Rand, up *filter.Matcher, live map[vtime.SubscriberID]*filter.Subscription) {
	t.Helper()
	for id, sub := range live {
		for j := 0; j < 20; j++ {
			evt := randEvent(r)
			if sub.Matches(evt) && !up.MatchesAny(evt) {
				t.Fatalf("member %d (%s): event %v matches locally but upstream view misses it",
					id, sub.String(), evt)
			}
		}
	}
}

func TestCoverSetShrinksAndReexpands(t *testing.T) {
	cs := NewCoverSet()
	up := filter.NewMatcher()

	applyOps(t, up, cs.Add(1, filter.MustParse(`price > 10`)))
	applyOps(t, up, cs.Add(2, filter.MustParse(`price > 20`)))
	applyOps(t, up, cs.Add(3, filter.MustParse(`price > 30 and topic = "t"`)))
	if cs.Len() != 3 || cs.AnnouncedLen() != 1 {
		t.Fatalf("Len=%d AnnouncedLen=%d, want 3/1", cs.Len(), cs.AnnouncedLen())
	}
	if up.Len() != 1 {
		t.Fatalf("upstream sees %d announcements, want 1 (the cover)", up.Len())
	}

	// Removing the cover re-expands: 2 covers 3, so exactly 2 is promoted.
	applyOps(t, up, cs.Remove(1))
	if cs.AnnouncedLen() != 1 || up.Len() != 1 {
		t.Fatalf("after cover removal: AnnouncedLen=%d upstream=%d, want 1/1",
			cs.AnnouncedLen(), up.Len())
	}
	if _, ok := up.Get(2); !ok {
		t.Fatal("expected subscription 2 promoted to announced")
	}

	// A broader late arrival demotes the current cover.
	applyOps(t, up, cs.Add(4, filter.MustParse(`exists(price)`)))
	if cs.AnnouncedLen() != 1 || up.Len() != 1 {
		t.Fatalf("after broad add: AnnouncedLen=%d upstream=%d, want 1/1",
			cs.AnnouncedLen(), up.Len())
	}
	if _, ok := up.Get(4); !ok {
		t.Fatal("expected subscription 4 to be the announced cover")
	}

	// Announced() replays the covering set for a fresh upstream link.
	fresh := filter.NewMatcher()
	applyOps(t, fresh, cs.Announced())
	if fresh.Len() != 1 {
		t.Fatalf("replay announced %d, want 1", fresh.Len())
	}

	// Draining everything leaves the upstream view empty.
	applyOps(t, up, cs.Remove(4))
	applyOps(t, up, cs.Remove(2))
	applyOps(t, up, cs.Remove(3))
	if cs.Len() != 0 || cs.AnnouncedLen() != 0 || up.Len() != 0 {
		t.Fatalf("after drain: Len=%d AnnouncedLen=%d upstream=%d, want 0/0/0",
			cs.Len(), cs.AnnouncedLen(), up.Len())
	}
}

// TestCoverSetNoLossInvariant churns a CoverSet with random subscriptions,
// applying the emitted ops to an upstream matcher after EVERY op, and checks
// the covering invariant continuously: no event matching any live member may
// be invisible upstream. Ops are applied one at a time so announce-before-
// withdraw ordering is verified too (a mid-sequence uncovered window would
// drop events in flight).
func TestCoverSetNoLossInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	cs := NewCoverSet()
	up := filter.NewMatcher()
	live := make(map[vtime.SubscriberID]*filter.Subscription)
	next := vtime.SubscriberID(1)

	for step := 0; step < 400; step++ {
		var ops []CoverOp
		if len(live) > 0 && r.Intn(100) < 40 {
			var victim vtime.SubscriberID
			k := r.Intn(len(live))
			for id := range live {
				if k == 0 {
					victim = id
					break
				}
				k--
			}
			delete(live, victim)
			ops = cs.Remove(victim)
		} else {
			sub := randSubscription(r)
			live[next] = sub
			ops = cs.Add(next, sub)
			next++
		}
		for _, op := range ops {
			applyOps(t, up, []CoverOp{op})
			checkCovered(t, r, up, live)
		}
		checkCovered(t, r, up, live)
		if cs.Len() != len(live) {
			t.Fatalf("step %d: CoverSet.Len=%d live=%d", step, cs.Len(), len(live))
		}
		if up.Len() != cs.AnnouncedLen() {
			t.Fatalf("step %d: upstream=%d announced=%d", step, up.Len(), cs.AnnouncedLen())
		}
		if cs.AnnouncedLen() > cs.Len() {
			t.Fatalf("step %d: announced %d > members %d", step, cs.AnnouncedLen(), cs.Len())
		}
	}
	t.Logf("final population %d, announced %d", cs.Len(), cs.AnnouncedLen())
}

// TestCoverSetIdempotentAdd mirrors downstream reconnect: re-announcing an
// identical subscription must emit no upstream traffic.
func TestCoverSetIdempotentAdd(t *testing.T) {
	cs := NewCoverSet()
	sub := filter.MustParse(`price > 10`)
	if ops := cs.Add(7, sub); len(ops) != 1 {
		t.Fatalf("first add: %d ops, want 1", len(ops))
	}
	if ops := cs.Add(7, filter.MustParse(`price > 10`)); ops != nil {
		t.Fatalf("re-add of identical filter emitted %v, want none", ops)
	}
	// Replacement with a different filter does emit.
	ops := cs.Add(7, filter.MustParse(`price > 99`))
	if len(ops) == 0 {
		t.Fatal("replacement emitted no ops")
	}
}
