package repro

// One benchmark per table/figure of the paper's evaluation (section 5),
// backed by internal/experiment. Each benchmark runs a scaled version of
// the corresponding experiment and reports its headline metrics through
// b.ReportMetric; cmd/benchrunner produces the full-size tables and CSV
// series. See EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Experiment iterations take seconds, so the default -benchtime keeps
// b.N == 1; each iteration is one full experiment run.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/experiment"
)

// writeBenchJSON persists a benchmark's headline result as
// BENCH_<name>.json under $BENCH_JSON_DIR (no-op when unset). CI runs the
// smoke benchmarks with the variable set and uploads the files as build
// artifacts so runs can be compared across commits.
func writeBenchJSON(b *testing.B, name string, v any) {
	b.Helper()
	dir := os.Getenv("BENCH_JSON_DIR")
	if dir == "" {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		b.Fatalf("bench json: %v", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		b.Fatalf("bench json: %v", err)
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatalf("bench json: %v", err)
	}
}

// BenchmarkEndToEndLatency is E1 (section 5, result 1): end-to-end latency
// over a 5-hop broker network with the PHB's 44ms forced-log latency. The
// paper reports 50ms end-to-end of which 44ms is logging.
func BenchmarkEndToEndLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunLatency(b.TempDir(), 5, 40,
			44*time.Millisecond, 200*time.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.WithLogging.Mean)/1e6, "latency_ms")
		b.ReportMetric(float64(res.WithoutLogging.Mean)/1e6, "nolog_latency_ms")
		b.ReportMetric(res.LoggingShareMean*100, "logging_share_%")
		writeBenchJSON(b, "EndToEndLatency", res)
	}
}

// BenchmarkMultiPubendThroughput compares the sharded broker event loop
// against the serialized single-loop baseline: 4 pubends flooded through
// windowed async publishers over real loopback TCP (so the framed
// write-coalescing path is on the critical path), one durable subscriber
// per pubend. On a multi-core box the sharded configuration should deliver
// ≥1.5× the baseline's events/s; on a single core the two are expected to
// tie (the run still validates exactly-once under shard concurrency).
func BenchmarkMultiPubendThroughput(b *testing.B) {
	configs := []struct {
		name   string
		shards int
	}{
		{"serialized_1shard", 1},
		{fmt.Sprintf("sharded_%dshards", max(runtime.GOMAXPROCS(0), 2)), max(runtime.GOMAXPROCS(0), 2)},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunShardThroughput(b.TempDir(), experiment.ShardThroughputParams{
					Pubends: 4,
					Shards:  cfg.shards,
					TCP:     true,
					Measure: 1500 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Gaps != 0 {
					b.Fatalf("unexpected gaps under steady flood: %d", res.Gaps)
				}
				b.ReportMetric(res.DeliveryRate, "events/s")
				b.ReportMetric(res.PublishRate, "publishes/s")
				writeBenchJSON(b, "MultiPubendThroughput_"+cfg.name, res)
			}
		})
	}
}

// BenchmarkDurableThroughput measures fully durable publish throughput at
// ≥8 concurrent publishers under the two durability regimes: "always" (one
// fsync per acked event — the paper's forced-log PHB) and "group" (the
// group-commit pipeline: batched appends, one fsync per batch). The
// headline numbers are events/s and fsyncs/event; group commit must come
// in well below 1 fsync/event. Each run also closes and recovers the
// volume, failing if any acked publish was lost. Results land in
// BENCH_5.json.
func BenchmarkDurableThroughput(b *testing.B) {
	const publishers, events = 8, 150
	for i := 0; i < b.N; i++ {
		combined := make(map[string]*experiment.DurableThroughputResult, 2)
		for _, mode := range []string{"always", "group"} {
			res, err := experiment.RunDurableThroughput(b.TempDir(), experiment.DurableThroughputParams{
				Publishers: publishers,
				Events:     events,
				Mode:       mode,
				// A short linger guarantees batching even on disks whose
				// fsync is faster than the publishers' enqueue rate (CI
				// tmpfs); on a real disk the fsync itself is the window.
				GroupMaxDelay: 500 * time.Microsecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			combined[mode] = res
			prefix := mode + "_"
			b.ReportMetric(res.EventsPerSec, prefix+"events/s")
			b.ReportMetric(res.FsyncsPerEvent, prefix+"fsyncs/event")
		}
		if g := combined["group"]; g.FsyncsPerEvent >= 1 {
			b.Fatalf("group commit issued %.3f fsyncs/event at %d publishers; expected well below 1",
				g.FsyncsPerEvent, publishers)
		}
		writeBenchJSON(b, "5", combined)
	}
}

// BenchmarkSHBScalability is E2 (figure 4): aggregate delivery rate as
// SHBs are added, with and without subscriber churn. The paper scales
// 20K→79.2K ev/s (no churn) and 17.6K→69.6K (churn) over 1→4 SHBs.
func BenchmarkSHBScalability(b *testing.B) {
	configs := []struct {
		name  string
		shbs  int
		churn bool
	}{
		{"1broker_steady", 0, false},
		{"1shb_steady", 1, false},
		{"2shb_steady", 2, false},
		{"4shb_steady", 4, false},
		{"1shb_churn", 1, true},
		{"2shb_churn", 2, true},
		{"4shb_churn", 4, true},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunScalability(b.TempDir(), experiment.ScalabilityParams{
					SHBs:         cfg.shbs,
					SubsPerSHB:   8,
					Disconnect:   cfg.churn,
					Intermediate: cfg.shbs > 1,
					Measure:      1500 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Violations != 0 {
					b.Fatalf("ordering violations: %d", res.Violations)
				}
				b.ReportMetric(res.AggregateRate, "events/s")
				b.ReportMetric(res.PerSubRate, "events/s/sub")
			}
		})
	}
}

// BenchmarkCatchupDuration is E3 (figure 5): how long reconnecting
// subscribers take to catch up under the paper's churn workload (5–6s for
// a 5s outage in the paper; scaled here).
func BenchmarkCatchupDuration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunCatchupRates(b.TempDir(), experiment.CatchupRatesParams{
			Subscribers: 12,
			Duration:    3 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.CatchupDurations) == 0 {
			b.Fatal("no catchups completed")
		}
		b.ReportMetric(float64(res.CatchupMean)/1e6, "catchup_ms")
		b.ReportMetric(float64(res.CatchupP95)/1e6, "catchup_p95_ms")
		b.ReportMetric(float64(len(res.CatchupDurations)), "catchups")
	}
}

// BenchmarkStreamRates is E4 (figure 6): advance rates of
// latestDelivered(p) (steady ≈1000 tick-ms/s regardless of churn) and
// released(p) (held back by disconnected subscribers).
func BenchmarkStreamRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunCatchupRates(b.TempDir(), experiment.CatchupRatesParams{
			Subscribers: 12,
			Duration:    3 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LDRateMean, "ld_tickms/s")
		b.ReportMetric(res.RelRateMin, "released_min_tickms/s")
	}
}

// BenchmarkPFSVersusEventLog is E5 (section 5.1.2): the PFS versus logging
// the event once per matching subscriber. Paper: 25× less data, >5×
// faster.
func BenchmarkPFSVersusEventLog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunPFSBench(b.TempDir(), experiment.PFSBenchParams{
			Events: 8000, // 10s of the paper's 800 ev/s workload
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SpeedupX, "speedup_x")
		b.ReportMetric(res.DataReductionX, "data_reduction_x")
		b.ReportMetric(float64(res.PFSBytes)/1e6, "pfs_MB")
	}
}

// BenchmarkPFSImprecise is the design ablation of section 4.2: the
// imprecise PFS trades write volume for refiltering during catchup.
func BenchmarkPFSImprecise(b *testing.B) {
	for _, bucket := range []int64{0, 10, 100} {
		name := "precise"
		if bucket > 0 {
			name = fmt.Sprintf("bucket_%d", bucket)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunPFSBench(b.TempDir(), experiment.PFSBenchParams{
					Events:          8000,
					ImpreciseBucket: Timestamp(bucket),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.PFSBytes)/1e6, "pfs_MB")
				b.ReportMetric(res.SpeedupX, "speedup_x")
			}
		})
	}
}

// BenchmarkJMSAutoAck is E6 (section 5.2): aggregate JMS auto-acknowledge
// throughput, bounded by database commit rate and improved by batching CT
// updates across subscribers (paper: 4K ev/s at 25 subs, 7.6K at 200).
func BenchmarkJMSAutoAck(b *testing.B) {
	for _, cfg := range []struct {
		subs, conns int
	}{
		{25, 4},
		{100, 4},
		{25, 1},
	} {
		b.Run(fmt.Sprintf("%dsubs_%dconn", cfg.subs, cfg.conns), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunJMS(b.TempDir(), experiment.JMSParams{
					Subscribers: cfg.subs,
					Connections: cfg.conns,
					Measure:     1500 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AggregateRate, "events/s")
				b.ReportMetric(res.DBCommitRate, "db_commits/s")
				b.ReportMetric(res.UpdatesPerTx, "updates/tx")
			}
		})
	}
}

// BenchmarkSHBFailover is E7 (figures 7 and 8): SHB crash and recovery.
// Paper shapes: the constream recovers at ≈5× the normal slope; released
// stays flat until subscribers reconnect; PHB load barely moves thanks to
// nack consolidation.
func BenchmarkSHBFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFailover(b.TempDir(), experiment.FailoverParams{
			Subscribers: 24,
			Machines:    4,
			Down:        500 * time.Millisecond,
			PostRun:     2 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Violations != 0 || res.Gaps != 0 {
			b.Fatalf("violations=%d gaps=%d", res.Violations, res.Gaps)
		}
		b.ReportMetric(res.RecoveryLDRate/res.NormalLDRate, "recovery_slope_x")
		b.ReportMetric(float64(res.CatchupMean)/1e6, "catchup_ms")
		b.ReportMetric(res.NormalRate, "normal_events/s")
		b.ReportMetric(res.CatchupRate, "catchup_events/s")
	}
}

// BenchmarkCatchupStreamsVsConstream quantifies the paper's result 3: SHB
// delivery throughput during all-subscriber catchup (separate streams)
// versus normal consolidated operation (paper: ~10K vs ~20K ev/s).
func BenchmarkCatchupStreamsVsConstream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFailover(b.TempDir(), experiment.FailoverParams{
			Subscribers: 24,
			Machines:    4,
			Down:        500 * time.Millisecond,
			PostRun:     2 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		ratio := 0.0
		if res.CatchupRate > 0 {
			// During catchup the SHB also redelivers the backlog, so
			// compare delivered-rate normalized per stream count.
			ratio = res.NormalRate / res.CatchupRate
		}
		b.ReportMetric(res.NormalRate, "constream_events/s")
		b.ReportMetric(res.CatchupRate, "catchup_events/s")
		b.ReportMetric(ratio, "constream_advantage_x")
	}
}

// BenchmarkNackConsolidation measures how much upstream recovery traffic
// the curiosity-stream consolidation eliminates when every subscriber
// recovers the same interval at once (section 3).
func BenchmarkNackConsolidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFailover(b.TempDir(), experiment.FailoverParams{
			Subscribers: 24,
			Machines:    4,
			Down:        400 * time.Millisecond,
			PostRun:     2 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		saved := 0.0
		if res.NackTicksWanted > 0 {
			saved = 100 * (1 - float64(res.NackTicksSent)/float64(res.NackTicksWanted))
		}
		b.ReportMetric(saved, "ticks_saved_%")
		b.ReportMetric(float64(res.NackTicksWanted), "wanted_ticks")
		b.ReportMetric(float64(res.NackTicksSent), "sent_ticks")
	}
}

// BenchmarkPFSReadBufferSweep is the paper's future-work knob (and the
// read-buffer discussion of section 5.3): catchup duration versus the PFS
// batch-read buffer size (the paper uses 5000 Q ticks).
func BenchmarkPFSReadBufferSweep(b *testing.B) {
	for _, bufQ := range []int{50, 500, 5000} {
		b.Run(fmt.Sprintf("buf_%d", bufQ), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunFailover(b.TempDir(), experiment.FailoverParams{
					Subscribers: 12,
					Machines:    3,
					Down:        400 * time.Millisecond,
					PostRun:     1500 * time.Millisecond,
					ReadBufferQ: bufQ,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.CatchupMean)/1e6, "catchup_ms")
			}
		})
	}
}

// BenchmarkEarlyRelease is E8 (section 3's PHB-controlled policy): a
// lagging subscriber receives an explicit gap and live delivery resumes;
// pubend storage is reclaimed despite the outstanding subscription.
func BenchmarkEarlyRelease(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunEarlyRelease(b.TempDir(), 100*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.GapsDelivered), "gaps")
		b.ReportMetric(float64(res.PubendEvents), "retained_events")
	}
}

// BenchmarkIntermediateFiltering quantifies section 1's network-utilization
// claim: the fraction of event traffic an intermediate broker downgrades
// to silence because nothing below a link subscribes to it.
func BenchmarkIntermediateFiltering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFilteringAblation(b.TempDir(), time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SavedFraction*100, "traffic_saved_%")
		b.ReportMetric(float64(res.EventsForwarded), "forwarded")
	}
}

// BenchmarkTorture runs the randomized crash/churn fault-injection workload
// and reports the chaos survived with the exactly-once contract intact.
func BenchmarkTorture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTorture(b.TempDir(), experiment.TortureParams{
			Subscribers: 5,
			Duration:    2 * time.Second,
			Seed:        int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllDelivered || res.Violations != 0 {
			b.Fatalf("contract violated: %+v", res)
		}
		b.ReportMetric(float64(res.Crashes), "crashes")
		b.ReportMetric(float64(res.Churns), "churns")
		b.ReportMetric(float64(res.Published), "events")
	}
}

// BenchmarkMatchScaling sweeps the subscription matcher over growing
// populations (1e3→1e5 by default; override with BENCH_MATCH_SIZES, a
// comma-separated list, for CI smoke runs), comparing the brute-force
// linear engine against the counting attribute index on an identical
// population and event stream. The run fails outright if the engines ever
// disagree on a match set, or if the index is not faster than the linear
// scan at the largest size — a regression gate, since the whole point of
// the index is sublinear growth. Results land in BENCH_6.json.
func BenchmarkMatchScaling(b *testing.B) {
	sizes := []int{1000, 10000, 100000}
	if env := os.Getenv("BENCH_MATCH_SIZES"); env != "" {
		sizes = nil
		for _, f := range strings.Split(env, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				b.Fatalf("BENCH_MATCH_SIZES: bad size %q", f)
			}
			sizes = append(sizes, n)
		}
	}
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunMatchScaling(experiment.MatchScalingParams{Sizes: sizes})
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range res.Points {
			b.ReportMetric(pt.IndexedNsPerEvent, fmt.Sprintf("indexed_ns_%dsubs", pt.Subs))
			b.ReportMetric(pt.LinearNsPerEvent, fmt.Sprintf("linear_ns_%dsubs", pt.Subs))
			b.ReportMetric(pt.SpeedupX, fmt.Sprintf("speedup_x_%dsubs", pt.Subs))
		}
		last := res.Points[len(res.Points)-1]
		if last.SpeedupX < 1 {
			b.Fatalf("indexed engine slower than linear at %d subs: %.0fns vs %.0fns",
				last.Subs, last.IndexedNsPerEvent, last.LinearNsPerEvent)
		}
		writeBenchJSON(b, "6", res)
	}
}

// BenchmarkPartitionHeal severs the SHB↔PHB overlay link five times behind
// a seeded fault injector while a publisher streams, and reports the
// supervised link's healing characteristics with the exactly-once contract
// intact (section 3.3's recovery protocol driven by real link failures).
func BenchmarkPartitionHeal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunPartitionHeal(b.TempDir(), experiment.PartitionHealParams{
			Severs: 5,
			Seed:   int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllDelivered || res.Gaps != 0 || res.Violations != 0 {
			b.Fatalf("contract violated: %+v", res)
		}
		b.ReportMetric(float64(res.Severs), "severs")
		b.ReportMetric(float64(res.Reconnects), "reconnects")
		b.ReportMetric(float64(res.MeanHeal)/1e6, "mean_heal_ms")
		b.ReportMetric(float64(res.MaxHeal)/1e6, "max_heal_ms")
		writeBenchJSON(b, "PartitionHeal", res)
	}
}

// BenchmarkTopologyChaos is the dynamic-membership acceptance run: a
// 12-broker tree (PHB + 3 relays + 8 SHBs) under live durable traffic,
// with 5 random broker crashes (each restarted from its data directory)
// and 5 live re-parents via Broker.SetUpstream. The run fails unless every
// broker's /healthz is green after the final heal and every subscriber
// received every event exactly once in order. The CI chaos-smoke step runs
// a reduced tree through the BENCH_CHAOS_* overrides. Results land in
// BENCH_TopologyChaos.json.
func BenchmarkTopologyChaos(b *testing.B) {
	params := experiment.TopologyChaosParams{
		Mids:      churnEnvInt(b, "BENCH_CHAOS_MIDS", 3),
		SHBs:      churnEnvInt(b, "BENCH_CHAOS_SHBS", 8),
		Kills:     churnEnvInt(b, "BENCH_CHAOS_KILLS", 5),
		Reparents: churnEnvInt(b, "BENCH_CHAOS_REPARENTS", 5),
	}
	for i := 0; i < b.N; i++ {
		p := params
		p.Seed = int64(i + 1)
		res, err := experiment.RunTopologyChaos(b.TempDir(), p)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Healthy || !res.AllDelivered || res.Gaps != 0 || res.Violations != 0 {
			b.Fatalf("contract violated: %+v", res)
		}
		b.ReportMetric(float64(res.Brokers), "brokers")
		b.ReportMetric(float64(res.Kills), "kills")
		b.ReportMetric(float64(res.Reparents), "reparents")
		b.ReportMetric(float64(res.Published), "events")
		writeBenchJSON(b, "TopologyChaos", res)
	}
}

// BenchmarkSelfHealing is the self-healing acceptance run: a 12-broker
// tree (PHB + 5 relays + 6 SHBs) where every non-root broker carries an
// ordered candidate-parent list, under live durable traffic, with 5
// interior-broker kills of which one is permanent — and ZERO driver-issued
// re-parents. Orphaned subtrees must repair themselves (probe candidates,
// adopt loop-free, make-before-break). The run fails unless every
// surviving broker heals and every subscriber received every event exactly
// once in order; the headline metrics are the time-to-repair p50/p99
// measured by the brokers' own repair monitors. The CI selfheal-smoke step
// runs a reduced tree through the BENCH_SELFHEAL_* overrides. Results land
// in BENCH_SelfHealing.json.
func BenchmarkSelfHealing(b *testing.B) {
	params := experiment.SelfHealingParams{
		Mids:  churnEnvInt(b, "BENCH_SELFHEAL_MIDS", 5),
		SHBs:  churnEnvInt(b, "BENCH_SELFHEAL_SHBS", 6),
		Kills: churnEnvInt(b, "BENCH_SELFHEAL_KILLS", 5),
	}
	for i := 0; i < b.N; i++ {
		p := params
		p.Seed = int64(i + 1)
		res, err := experiment.RunSelfHealing(b.TempDir(), p)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Healthy || !res.AllDelivered || res.Gaps != 0 || res.Violations != 0 {
			b.Fatalf("contract violated: %+v", res)
		}
		b.ReportMetric(float64(res.Brokers), "brokers")
		b.ReportMetric(float64(res.Kills), "kills")
		b.ReportMetric(float64(res.Failovers), "failovers")
		b.ReportMetric(res.RepairP50Ms, "repair-p50-ms")
		b.ReportMetric(res.RepairP99Ms, "repair-p99-ms")
		writeBenchJSON(b, "SelfHealing", res)
	}
}

// churnEnvInt reads an integer override for the churn benchmark scale from
// the environment (the CI churn-smoke step runs a reduced population).
func churnEnvInt(b *testing.B, key string, def int) int {
	env := os.Getenv(key)
	if env == "" {
		return def
	}
	n, err := strconv.Atoi(env)
	if err != nil || n <= 0 {
		b.Fatalf("%s: bad value %q", key, env)
	}
	return n
}

// BenchmarkSubscriberChurn is the subscriber-churn scenario at paper scale:
// 50k durable subscribers with Zipf-distributed ack lag under
// connect/disconnect storms, catchup streams draining from the PFS while
// live traffic keeps flowing. It runs the sharded engine and the
// single-lock baseline over the same seeded workload, reports the
// live-path batch-ingest p99 alongside the post-publish drain time, and —
// on machines with at least 4 cores — gates on the sharded engine
// sustaining at least the single-lock live throughput. Exactly-once
// violations fail the run at either configuration. Results land in
// BENCH_10.json (PR 7 introduced the scenario; PR 10's zero-alloc
// delivery path re-baselined it).
func BenchmarkSubscriberChurn(b *testing.B) {
	params := experiment.ChurnParams{
		Subscribers: churnEnvInt(b, "BENCH_CHURN_SUBS", 50000),
		Events:      churnEnvInt(b, "BENCH_CHURN_EVENTS", 20000),
		ChurnOps:    churnEnvInt(b, "BENCH_CHURN_OPS", 2000),
	}
	shards := runtime.GOMAXPROCS(0)
	if shards > 8 {
		shards = 8
	}
	if shards < 2 {
		// Exercise the sharded scheduler even on small containers; the
		// throughput gate below stays off without real parallelism.
		shards = 2
	}
	for i := 0; i < b.N; i++ {
		sp := params
		sp.SubShards = shards
		sp.Seed = int64(i + 1)
		sharded, err := experiment.RunSubscriberChurn(b.TempDir(), sp)
		if err != nil {
			b.Fatal(err)
		}
		bp := params
		bp.SubShards = 1
		bp.Seed = int64(i + 1)
		baseline, err := experiment.RunSubscriberChurn(b.TempDir(), bp)
		if err != nil {
			b.Fatal(err)
		}
		ratio := sharded.EventsPerSec / baseline.EventsPerSec
		b.ReportMetric(float64(sharded.LiveP99)/1e6, "live_p99_ms")
		b.ReportMetric(float64(sharded.DrainTime)/1e6, "drain_ms")
		b.ReportMetric(sharded.EventsPerSec, "events_per_sec")
		b.ReportMetric(float64(sharded.Catchups), "catchups")
		b.ReportMetric(ratio, "throughput_x_vs_singlelock")
		if runtime.NumCPU() >= 4 && ratio < 1.0 {
			b.Fatalf("sharded engine slower than single-lock baseline on %d cores: %.0f vs %.0f events/s",
				runtime.NumCPU(), sharded.EventsPerSec, baseline.EventsPerSec)
		}
		writeBenchJSON(b, "10", map[string]any{
			"sharded":                 sharded,
			"singleLock":              baseline,
			"throughputXvsSingleLock": ratio,
		})
	}
}
