package repro

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the whole public facade: start a
// combined broker, publish, subscribe durably, disconnect, miss events,
// reconnect, and receive them exactly once.
func TestPublicAPIQuickstart(t *testing.T) {
	net := NewInprocNetwork(0)
	b, err := StartBroker(context.Background(), BrokerConfig{
		Name:          "node1",
		DataDir:       filepath.Join(t.TempDir(), "node1"),
		Transport:     net,
		ListenAddr:    "node1",
		HostedPubends: []PubendConfig{{ID: 1}},
		EnableSHB:     true,
		AllPubends:    []PubendID{1},
		TickInterval:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close() //nolint:errcheck

	pub, err := NewPublisher(context.Background(), net, "node1", "quickstart")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close() //nolint:errcheck

	sub, err := NewDurableSubscriber(SubscriberOptions{
		ID:          1,
		Filter:      `topic = "orders" and qty > 100`,
		AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), net, "node1"); err != nil {
		t.Fatal(err)
	}

	publish := func(qty int64) Timestamp {
		t.Helper()
		_, ts, err := pub.Publish(Event{
			Attrs: Attributes{
				"topic": String("orders"),
				"qty":   Int(qty),
			},
			Payload: []byte(fmt.Sprintf("BUY %d XYZ", qty)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}

	want := publish(500)
	publish(50) // filtered: qty too small
	d := <-sub.Deliveries()
	if d.Kind != DeliverEvent || d.Timestamp != want {
		t.Fatalf("delivery = %+v, want event @%d", d, want)
	}

	// Disconnect; events published while away are recovered exactly once
	// on reconnection.
	if err := sub.Disconnect(); err != nil {
		t.Fatal(err)
	}
	missed := []Timestamp{publish(200), publish(300)}
	publish(10) // filtered
	if err := sub.Connect(context.Background(), net, "node1"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck
	for _, want := range missed {
		d := <-sub.Deliveries()
		if d.Kind != DeliverEvent || d.Timestamp != want {
			t.Fatalf("catchup delivery = %+v, want event @%d", d, want)
		}
	}
	events, _, gaps, violations := sub.Stats()
	if events != 3 || gaps != 0 || violations != 0 {
		t.Errorf("stats: events=%d gaps=%d violations=%d", events, gaps, violations)
	}
	if sub.CT().Get(1) < missed[1] {
		t.Error("checkpoint token did not advance")
	}
}

// TestPublicAPIFilterParsing verifies the re-exported filter surface.
func TestPublicAPIFilterParsing(t *testing.T) {
	sub, err := ParseFilter(`prefix(topic, "trades.") and price >= 10 and active = true`)
	if err != nil {
		t.Fatal(err)
	}
	match := Attributes{
		"topic":  String("trades.NYSE"),
		"price":  Float(10),
		"active": Bool(true),
	}
	if !sub.Matches(match) {
		t.Error("filter should match")
	}
	match["price"] = Float(9.99)
	if sub.Matches(match) {
		t.Error("filter should reject low price")
	}
	if _, err := ParseFilter(`topic = `); err == nil {
		t.Error("bad filter parsed")
	}
}

// TestPublicAPITCPDeployment runs the quickstart over real TCP sockets.
func TestPublicAPITCPDeployment(t *testing.T) {
	var transport TCPTransport
	b, err := StartBroker(context.Background(), BrokerConfig{
		Name:          "tcp-node",
		DataDir:       filepath.Join(t.TempDir(), "node"),
		Transport:     transport,
		ListenAddr:    "127.0.0.1:0", // note: broker needs a fixed port to be dialed
		HostedPubends: []PubendConfig{{ID: 1}},
		EnableSHB:     true,
		AllPubends:    []PubendID{1},
		TickInterval:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 127.0.0.1:0 binds an ephemeral port we cannot discover through the
	// facade; re-start on a likely-free fixed port instead.
	b.Close() //nolint:errcheck
	addr := "127.0.0.1:39417"
	b, err = StartBroker(context.Background(), BrokerConfig{
		Name:          "tcp-node",
		DataDir:       filepath.Join(t.TempDir(), "node2"),
		Transport:     transport,
		ListenAddr:    addr,
		HostedPubends: []PubendConfig{{ID: 1}},
		EnableSHB:     true,
		AllPubends:    []PubendID{1},
		TickInterval:  2 * time.Millisecond,
	})
	if err != nil {
		t.Skipf("fixed TCP port unavailable: %v", err)
	}
	defer b.Close() //nolint:errcheck

	pub, err := NewPublisher(context.Background(), transport, addr, "tcp-pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close() //nolint:errcheck
	sub, err := NewDurableSubscriber(SubscriberOptions{
		ID: 1, Filter: `true`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), transport, addr); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	if _, _, err := pub.Publish(Event{
		Attrs:   Attributes{"k": Int(1)},
		Payload: []byte("over tcp"),
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-sub.Deliveries():
		if d.Kind != DeliverEvent || string(d.Event.Payload) != "over tcp" {
			t.Fatalf("delivery = %+v", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no delivery over TCP")
	}
}

// TestPublicAPIDeprecatedFacade pins the pre-context-first entry points:
// StartBrokerContext, NewPublisherWithOptions and ConnectContext must keep
// working verbatim for existing callers while the primary names are
// context-first.
func TestPublicAPIDeprecatedFacade(t *testing.T) {
	net := NewInprocNetwork(0)
	b, err := StartBrokerContext(context.Background(), BrokerConfig{
		Name:          "legacy",
		DataDir:       filepath.Join(t.TempDir(), "legacy"),
		Transport:     net,
		ListenAddr:    "legacy",
		HostedPubends: []PubendConfig{{ID: 1}},
		EnableSHB:     true,
		AllPubends:    []PubendID{1},
		TickInterval:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close() //nolint:errcheck

	pub, err := NewPublisherWithOptions(net, "legacy", "old-caller", PublisherOptions{
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close() //nolint:errcheck

	sub, err := NewDurableSubscriber(SubscriberOptions{
		ID:          7,
		Filter:      `true`,
		AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.ConnectContext(context.Background(), net, "legacy"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	_, want, err := pub.Publish(Event{Attrs: Attributes{"k": Int(1)}, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	d := <-sub.Deliveries()
	if d.Kind != DeliverEvent || d.Timestamp != want {
		t.Fatalf("delivery = %+v, want event @%d", d, want)
	}
}
