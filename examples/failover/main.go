// Failover: crash the subscriber hosting broker mid-stream, restart it
// from its persistent state (metastore + PFS), reconnect the subscribers,
// and verify exactly-once delivery end to end — the scenario behind the
// paper's figures 7 and 8.
//
// The publisher never stops: events published during the outage accumulate
// at the PHB (logged once) and are recovered by the restarted SHB's
// consolidated stream (nacks) and by each subscriber's catchup stream.
//
// Run with: go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	repro "repro"
)

const (
	subscribers = 8
	rate        = 400 // events/s
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "failover-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //nolint:errcheck

	net := repro.NewInprocNetwork(0)
	phb, err := repro.StartBroker(context.Background(), repro.BrokerConfig{
		Name:          "phb",
		DataDir:       filepath.Join(dir, "phb"),
		Transport:     net,
		ListenAddr:    "phb",
		HostedPubends: []repro.PubendConfig{{ID: 1}},
		TickInterval:  2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer phb.Close() //nolint:errcheck

	shbCfg := repro.BrokerConfig{
		Name:         "shb",
		DataDir:      filepath.Join(dir, "shb"),
		Transport:    net,
		ListenAddr:   "shb",
		UpstreamAddr: "phb",
		EnableSHB:    true,
		AllPubends:   []repro.PubendID{1},
		TickInterval: 2 * time.Millisecond,
	}
	shb, err := repro.StartBroker(context.Background(), shbCfg)
	if err != nil {
		return err
	}

	// Subscribers counting their deliveries.
	var received [subscribers]atomic.Int64
	subs := make([]*repro.DurableSubscriber, subscribers)
	for i := range subs {
		s, err := repro.NewDurableSubscriber(repro.SubscriberOptions{
			ID:          repro.SubscriberID(i + 1),
			Filter:      `true`,
			AckInterval: 10 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		if err := s.Connect(context.Background(), net, "shb"); err != nil {
			return err
		}
		subs[i] = s
		go func(i int, s *repro.DurableSubscriber) {
			for d := range s.Deliveries() {
				if d.Kind == repro.DeliverEvent {
					received[i].Add(1)
				}
			}
		}(i, s)
	}

	// A steady publisher that never stops.
	pub, err := repro.NewPublisher(context.Background(), net, "phb", "feed")
	if err != nil {
		return err
	}
	defer pub.Close() //nolint:errcheck
	var published atomic.Int64
	stopPub := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		ticker := time.NewTicker(time.Second / rate)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				seq := published.Add(1)
				//nolint:errcheck,gosec // the ack channel is drained lazily
				pub.PublishAsync(repro.Event{
					Attrs:   repro.Attributes{"seq": repro.Int(seq)},
					Payload: []byte("tick"),
				}, 1)
			case <-stopPub:
				return
			}
		}
	}()

	total := func() (n int64) {
		for i := range received {
			n += received[i].Load()
		}
		return
	}

	fmt.Println("== normal operation (1s) ==")
	time.Sleep(time.Second)
	fmt.Printf("published=%d delivered=%d (×%d subscribers)\n",
		published.Load(), total(), subscribers)

	fmt.Println("\n== SHB crash (publisher keeps going for 1s) ==")
	shb.Crash()
	time.Sleep(time.Second)
	fmt.Printf("published=%d delivered=%d (stalled: SHB down)\n", published.Load(), total())

	fmt.Println("\n== SHB restart from persistent state; subscribers reconnect ==")
	shb2, err := repro.StartBroker(context.Background(), shbCfg)
	if err != nil {
		return err
	}
	defer shb2.Close() //nolint:errcheck
	for _, s := range subs {
		for {
			if err := s.Connect(context.Background(), net, "shb"); err == nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Let everything catch up, then stop publishing and drain.
	time.Sleep(2 * time.Second)
	close(stopPub)
	<-pubDone
	deadline := time.Now().Add(15 * time.Second)
	for total() < published.Load()*subscribers && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}

	want := published.Load() * subscribers
	fmt.Printf("published=%d delivered=%d want=%d\n", published.Load(), total(), want)
	ok := total() == want
	for i, s := range subs {
		events, _, gaps, violations := s.Stats()
		if gaps != 0 || violations != 0 || events != published.Load() {
			ok = false
			fmt.Printf("  sub %d: events=%d gaps=%d violations=%d\n", i+1, events, gaps, violations)
		}
		s.Disconnect() //nolint:errcheck,gosec // teardown
	}
	fmt.Printf("\nexactly-once across SHB failure: %v\n", ok)
	if !ok {
		return fmt.Errorf("delivery contract violated")
	}
	return nil
}
