// Early release: the administratively specified storage-reclamation policy
// of section 3. A well-behaved subscriber consumes normally; a misbehaving
// one disconnects and never acknowledges. Without early release its
// backlog would pin the pubend's persistent storage forever; with a
// maxRetain policy the pubend converts old ticks to L (lost), reclaims the
// log, and the misbehaving subscriber receives an explicit gap message on
// reconnection — never silent loss.
//
// Run with: go run ./examples/earlyrelease
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	repro "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "earlyrelease-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //nolint:errcheck

	const retain = 300 * time.Millisecond // maxRetain(p), virtual time

	net := repro.NewInprocNetwork(0)
	b, err := repro.StartBroker(context.Background(), repro.BrokerConfig{
		Name:       "node1",
		DataDir:    dir,
		Transport:  net,
		ListenAddr: "node1",
		HostedPubends: []repro.PubendConfig{{
			ID:     1,
			Policy: repro.MaxRetain{Retain: repro.Timestamp(retain / time.Microsecond)},
		}},
		EnableSHB:    true,
		AllPubends:   []repro.PubendID{1},
		TickInterval: 2 * time.Millisecond,
		// Small caches so recovery must go to the pubend, where the
		// events no longer exist.
		EventCacheSize: 8,
		RelayCacheSize: 8,
	})
	if err != nil {
		return err
	}
	defer b.Close() //nolint:errcheck

	pub, err := repro.NewPublisher(context.Background(), net, "node1", "feed")
	if err != nil {
		return err
	}
	defer pub.Close() //nolint:errcheck

	wellBehaved, err := repro.NewDurableSubscriber(repro.SubscriberOptions{
		ID: 1, Filter: `true`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := wellBehaved.Connect(context.Background(), net, "node1"); err != nil {
		return err
	}
	defer wellBehaved.Disconnect() //nolint:errcheck
	go func() {
		for range wellBehaved.Deliveries() { //nolint:revive // drain
		}
	}()

	misbehaving, err := repro.NewDurableSubscriber(repro.SubscriberOptions{
		ID: 2, Filter: `true`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := misbehaving.Connect(context.Background(), net, "node1"); err != nil {
		return err
	}
	if err := misbehaving.Disconnect(); err != nil {
		return err
	}
	fmt.Println("misbehaving subscriber disconnected; it will never acknowledge")

	for i := 0; i < 200; i++ {
		if _, _, err := pub.Publish(repro.Event{
			Attrs:   repro.Attributes{"seq": repro.Int(int64(i))},
			Payload: []byte("data"),
		}); err != nil {
			return err
		}
	}
	fmt.Printf("published 200 events; pubend retains %d\n", b.Pubend(1).EventCount())

	fmt.Printf("waiting past maxRetain (%v)...\n", retain)
	time.Sleep(retain + 300*time.Millisecond)
	// Publish one more event so T(p) visibly advances and the policy
	// re-evaluates on the next housekeeping tick.
	if _, _, err := pub.Publish(repro.Event{
		Attrs: repro.Attributes{"seq": repro.Int(999)}, Payload: []byte("late"),
	}); err != nil {
		return err
	}
	time.Sleep(100 * time.Millisecond)
	fmt.Printf("pubend now retains %d events (storage reclaimed despite the unacknowledged backlog)\n",
		b.Pubend(1).EventCount())

	fmt.Println("\nmisbehaving subscriber reconnects:")
	if err := misbehaving.Connect(context.Background(), net, "node1"); err != nil {
		return err
	}
	defer misbehaving.Disconnect() //nolint:errcheck
	deadline := time.After(10 * time.Second)
	for {
		select {
		case d := <-misbehaving.Deliveries():
			if d.Kind == repro.DeliverGap {
				fmt.Printf("  GAP notification up to %s — events in the gap were early-released\n",
					d.Timestamp)
				_, _, gaps, violations := misbehaving.Stats()
				fmt.Printf("  gaps=%d ordering-violations=%d (no silent loss: the gap is explicit)\n",
					gaps, violations)
				return nil
			}
		case <-deadline:
			return fmt.Errorf("no gap observed")
		}
	}
}
