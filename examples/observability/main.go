// Observability: a two-broker tree (PHB → SHB) with the admin HTTP
// endpoint enabled on each node. Publishes traffic through the overlay,
// then scrapes /metrics and /healthz the way a monitoring system would and
// prints the key gauges and counters.
//
// Run with: go run ./examples/observability
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"time"

	repro "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "observability-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //nolint:errcheck

	// A PHB hosting pubend 1 and an SHB below it, both with an admin
	// endpoint on an ephemeral loopback port.
	net := repro.NewInprocNetwork(0)
	phb, err := repro.StartBroker(context.Background(), repro.BrokerConfig{
		Name:          "phb",
		DataDir:       filepath.Join(dir, "phb"),
		Transport:     net,
		ListenAddr:    "phb",
		HostedPubends: []repro.PubendConfig{{ID: 1}},
		TickInterval:  2 * time.Millisecond,
		AdminAddr:     "127.0.0.1:0",
	})
	if err != nil {
		return err
	}
	defer phb.Close() //nolint:errcheck
	shb, err := repro.StartBroker(context.Background(), repro.BrokerConfig{
		Name:         "shb",
		DataDir:      filepath.Join(dir, "shb"),
		Transport:    net,
		ListenAddr:   "shb",
		UpstreamAddr: "phb",
		EnableSHB:    true,
		AllPubends:   []repro.PubendID{1},
		TickInterval: 2 * time.Millisecond,
		AdminAddr:    "127.0.0.1:0",
	})
	if err != nil {
		return err
	}
	defer shb.Close() //nolint:errcheck
	fmt.Printf("admin endpoints: phb=http://%s shb=http://%s\n", phb.AdminAddr(), shb.AdminAddr())

	// Drive some traffic: 200 matching orders, 100 filtered ones.
	pub, err := repro.NewPublisher(context.Background(), net, "phb", "obs-pub")
	if err != nil {
		return err
	}
	defer pub.Close() //nolint:errcheck
	sub, err := repro.NewDurableSubscriber(repro.SubscriberOptions{
		ID:          1,
		Filter:      `topic = "orders"`,
		AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := sub.Connect(context.Background(), net, "shb"); err != nil {
		return err
	}
	defer sub.Disconnect() //nolint:errcheck

	topics := []string{"orders", "orders", "noise"}
	for i := 0; i < 300; i++ {
		_, _, err := pub.Publish(repro.Event{
			Attrs:   repro.Attributes{"topic": repro.String(topics[i%len(topics)])},
			Payload: []byte(fmt.Sprintf("event-%d", i)),
		})
		if err != nil {
			return err
		}
	}
	for received := 0; received < 200; {
		d := <-sub.Deliveries()
		if d.Kind == repro.DeliverEvent {
			received++
		}
	}

	// Scrape both brokers like Prometheus would.
	for _, b := range []*repro.Broker{phb, shb} {
		status, body, err := fetch("http://" + b.AdminAddr() + "/healthz")
		if err != nil {
			return err
		}
		fmt.Printf("\n%s /healthz: %d %s", b.AdminAddr(), status, body)

		_, metricsText, err := fetch("http://" + b.AdminAddr() + "/metrics")
		if err != nil {
			return err
		}
		fmt.Println("key metrics:")
		printMetrics(metricsText, []string{
			"gryphon_broker_publishes_total",
			"gryphon_broker_events_forwarded_total",
			"gryphon_broker_events_filtered_total",
			"gryphon_core_events_delivered_total",
			"gryphon_core_catchup_active",
			"gryphon_logvol_appends_total",
			"gryphon_logvol_fsyncs_total",
			"gryphon_overlay_queue_depth",
			"gryphon_overlay_sent_total",
			"gryphon_pfs_writes_total",
		})
	}
	fmt.Println("\nnote: instruments are process-wide; both brokers expose the same registry")
	return nil
}

func fetch(url string) (int, string, error) {
	resp, err := http.Get(url) //nolint:gosec // loopback demo URL
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close() //nolint:errcheck
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(body), nil
}

// printMetrics extracts the named unlabeled samples from exposition text.
func printMetrics(text string, names []string) {
	sort.Strings(names)
	for _, name := range names {
		re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
		if m := re.FindStringSubmatch(text); m != nil {
			fmt.Printf("  %-42s %s\n", name, m[1])
		}
	}
}
