// Matching at scale: engine selection and subscription covering.
//
// Every broker hop matches events against subscriptions. The strategy is
// pluggable per broker:
//
//   - MatchEngine: "indexed" (default) — the counting attribute index in
//     internal/matchidx: equality hash buckets, sorted range bounds,
//     prefix tries, presence sets; sublinear in the subscription count.
//   - MatchEngine: "linear" — the brute-force scan; the oracle the index
//     is property-tested against, and an escape hatch.
//
// The standalone broker binary exposes the same knob as a flag
// (`broker -match-engine indexed|linear`), and cluster topology files as
// `"matchEngine": "linear"` per broker spec.
//
// On top of matching, brokers announce only a *covering set* upstream:
// a subscription subsumed by another announced one (prefix(topic,
// "market.") covers topic = "market.nyse") stays local, so routing
// tables shrink with fan-in. This example builds PHB → mid → edge,
// attaches three overlapping subscribers at the edge, and watches the
// covering set collapse their upstream footprint to one announcement —
// then re-expand, losslessly, when the covering subscriber leaves.
//
// Run with: go run ./examples/matching
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	repro "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "matching-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //nolint:errcheck

	net := repro.NewInprocNetwork(0)
	phb, err := repro.StartBroker(context.Background(), repro.BrokerConfig{
		Name:          "phb",
		DataDir:       filepath.Join(dir, "phb"),
		Transport:     net,
		ListenAddr:    "phb",
		HostedPubends: []repro.PubendConfig{{ID: 1}},
		TickInterval:  2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer phb.Close() //nolint:errcheck
	mid, err := repro.StartBroker(context.Background(), repro.BrokerConfig{
		Name: "mid", Transport: net, ListenAddr: "mid", UpstreamAddr: "phb",
		TickInterval: 2 * time.Millisecond,
		// MatchEngine: "linear" would switch this broker's per-link
		// filters to the brute-force scan; the default is the index.
	})
	if err != nil {
		return err
	}
	defer mid.Close() //nolint:errcheck
	edge, err := repro.StartBroker(context.Background(), repro.BrokerConfig{
		Name:         "edge",
		DataDir:      filepath.Join(dir, "edge"),
		Transport:    net,
		ListenAddr:   "edge",
		UpstreamAddr: "mid",
		EnableSHB:    true,
		AllPubends:   []repro.PubendID{1},
		TickInterval: 2 * time.Millisecond,
		MatchEngine:  "indexed", // explicit, but also the default
	})
	if err != nil {
		return err
	}
	defer edge.Close() //nolint:errcheck

	mkSub := func(id repro.SubscriberID, filter string) *repro.DurableSubscriber {
		s, err := repro.NewDurableSubscriber(repro.SubscriberOptions{
			ID: id, Filter: filter, AckInterval: 10 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Connect(context.Background(), net, "edge"); err != nil {
			log.Fatal(err)
		}
		return s
	}
	// One broad subscription covering two specific ones.
	feed := mkSub(1, `prefix(topic, "market.")`)
	nyse := mkSub(2, `topic = "market.nyse"`)
	lse := mkSub(3, `topic = "market.lse" and size > 100`)
	defer nyse.Disconnect() //nolint:errcheck
	defer lse.Disconnect()  //nolint:errcheck

	time.Sleep(50 * time.Millisecond)
	report := func(when string) {
		em, ea := edge.CoverStats()
		mm, ma := mid.CoverStats()
		fmt.Printf("%-28s edge: %d subscriptions -> %d announced | mid: %d -> %d\n",
			when, em, ea, mm, ma)
	}
	report("three overlapping subs:")

	pub, err := repro.NewPublisher(context.Background(), net, "phb", "feed")
	if err != nil {
		return err
	}
	defer pub.Close() //nolint:errcheck

	publish := func(topic string, size int64) {
		if _, _, err := pub.Publish(repro.Event{
			Attrs: repro.Attributes{
				"topic": repro.String(topic),
				"size":  repro.Int(size),
			},
			Payload: []byte(fmt.Sprintf("%s x%d", topic, size)),
		}); err != nil {
			log.Fatal(err)
		}
	}
	drain := func(s *repro.DurableSubscriber, want int) int {
		got := 0
		deadline := time.After(5 * time.Second)
		for got < want {
			select {
			case d := <-s.Deliveries():
				if d.Kind == repro.DeliverEvent {
					got++
				}
			case <-deadline:
				return got
			}
		}
		return got
	}

	for i := 0; i < 10; i++ {
		publish("market.nyse", int64(50+i*20))
		publish("market.lse", int64(50+i*20))
	}
	fmt.Printf("deliveries: feed=%d nyse=%d lse=%d (covered subs still get everything)\n",
		drain(feed, 20), drain(nyse, 10), drain(lse, 7))

	// The covering subscriber leaves for good: the edge promotes the two
	// specific subscriptions upstream before withdrawing the cover, so
	// nothing published across the transition is lost.
	if err := feed.Unsubscribe(); err != nil {
		return err
	}
	time.Sleep(50 * time.Millisecond)
	report("cover unsubscribed:")

	for i := 0; i < 5; i++ {
		publish("market.nyse", 500)
		publish("market.lse", 500)
	}
	fmt.Printf("deliveries after re-expansion: nyse=%d lse=%d\n",
		drain(nyse, 5), drain(lse, 5))
	return nil
}
