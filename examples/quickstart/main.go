// Quickstart: one combined broker, one publisher, one durable subscriber.
// Demonstrates content-based filtering, disconnection, and exactly-once
// catchup — the core of the durable subscription model.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	repro "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //nolint:errcheck

	// One broker playing both roles: it hosts pubend 1 (PHB) and durable
	// subscribers (SHB).
	net := repro.NewInprocNetwork(0)
	b, err := repro.StartBroker(context.Background(), repro.BrokerConfig{
		Name:          "node1",
		DataDir:       dir,
		Transport:     net,
		ListenAddr:    "node1",
		HostedPubends: []repro.PubendConfig{{ID: 1}},
		EnableSHB:     true,
		AllPubends:    []repro.PubendID{1},
		TickInterval:  2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer b.Close() //nolint:errcheck

	pub, err := repro.NewPublisher(context.Background(), net, "node1", "quickstart-pub")
	if err != nil {
		return err
	}
	defer pub.Close() //nolint:errcheck

	// A durable subscription: orders over 100 shares.
	sub, err := repro.NewDurableSubscriber(repro.SubscriberOptions{
		ID:          1,
		Filter:      `topic = "orders" and qty > 100`,
		AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := sub.Connect(context.Background(), net, "node1"); err != nil {
		return err
	}

	order := func(qty int64) {
		_, ts, err := pub.Publish(repro.Event{
			Attrs: repro.Attributes{
				"topic": repro.String("orders"),
				"qty":   repro.Int(qty),
			},
			Payload: []byte(fmt.Sprintf("BUY %d XYZ", qty)),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published qty=%-4d @ %s\n", qty, ts)
	}

	fmt.Println("== connected: live delivery ==")
	order(500)
	order(50) // filtered out: qty too small
	d := <-sub.Deliveries()
	fmt.Printf("received: %q @ %s\n", d.Event.Payload, d.Timestamp)

	fmt.Println("== disconnected: events accumulate ==")
	if err := sub.Disconnect(); err != nil {
		return err
	}
	order(200)
	order(10) // filtered
	order(300)

	fmt.Println("== reconnected: exactly-once catchup ==")
	if err := sub.Connect(context.Background(), net, "node1"); err != nil {
		return err
	}
	defer sub.Disconnect() //nolint:errcheck
	for i := 0; i < 2; i++ {
		d := <-sub.Deliveries()
		fmt.Printf("caught up:  %q @ %s\n", d.Event.Payload, d.Timestamp)
	}
	events, silences, gaps, violations := sub.Stats()
	fmt.Printf("\nstats: events=%d silences=%d gaps=%d ordering-violations=%d\n",
		events, silences, gaps, violations)
	fmt.Printf("checkpoint token: %s\n", sub.CT())
	return nil
}
