// Stock trading: the paper's motivating scenario (section 1). Trade orders
// must arrive reliably at the execution engine AND be recorded by backup
// subscribers at multiple sites for disaster recovery — all with
// exactly-once delivery, even across disconnections.
//
// Topology: a PHB hosting the order stream, an intermediate broker, and
// two edge SHBs ("site A" and "site B"). The execution engine subscribes
// to NYSE orders at site A; a risk monitor subscribes to large orders at
// site A; a disaster-recovery archiver at site B records everything. The
// archiver periodically "fails" (disconnects) and recovers every missed
// order on reconnection.
//
// Run with: go run ./examples/stocktrading
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	repro "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "stocktrading-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //nolint:errcheck

	net := repro.NewInprocNetwork(0)
	// The PHB: orders are logged exactly once, here.
	phb, err := repro.StartBroker(context.Background(), repro.BrokerConfig{
		Name:          "phb",
		DataDir:       filepath.Join(dir, "phb"),
		Transport:     net,
		ListenAddr:    "phb",
		HostedPubends: []repro.PubendConfig{{ID: 1}},
		TickInterval:  2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer phb.Close() //nolint:errcheck
	// An intermediate broker: caches, filters per edge, consolidates.
	mid, err := repro.StartBroker(context.Background(), repro.BrokerConfig{
		Name: "mid", Transport: net, ListenAddr: "mid", UpstreamAddr: "phb",
		TickInterval: 2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer mid.Close() //nolint:errcheck
	for _, site := range []string{"siteA", "siteB"} {
		b, err := repro.StartBroker(context.Background(), repro.BrokerConfig{
			Name:         site,
			DataDir:      filepath.Join(dir, site),
			Transport:    net,
			ListenAddr:   site,
			UpstreamAddr: "mid",
			EnableSHB:    true,
			AllPubends:   []repro.PubendID{1},
			TickInterval: 2 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer b.Close() //nolint:errcheck
	}

	mkSub := func(id repro.SubscriberID, filter, site string) *repro.DurableSubscriber {
		s, err := repro.NewDurableSubscriber(repro.SubscriberOptions{
			ID: id, Filter: filter, AckInterval: 10 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Connect(context.Background(), net, site); err != nil {
			log.Fatal(err)
		}
		return s
	}
	execution := mkSub(1, `exchange = "NYSE"`, "siteA")
	risk := mkSub(2, `notional > 150000`, "siteA")
	archiver := mkSub(3, `prefix(exchange, "")`, "siteB") // everything
	defer execution.Disconnect()                          //nolint:errcheck
	defer risk.Disconnect()                               //nolint:errcheck

	pub, err := repro.NewPublisher(context.Background(), net, "phb", "order-gateway")
	if err != nil {
		return err
	}
	defer pub.Close() //nolint:errcheck

	rng := rand.New(rand.NewSource(7))
	symbols := []string{"IBM", "XYZ", "ACME"}
	exchanges := []string{"NYSE", "LSE"}
	order := func(i int) {
		sym := symbols[rng.Intn(len(symbols))]
		qty := int64(rng.Intn(2000) + 1)
		px := 90.0 + rng.Float64()*20
		if _, _, err := pub.Publish(repro.Event{
			Attrs: repro.Attributes{
				"exchange": repro.String(exchanges[i%2]),
				"symbol":   repro.String(sym),
				"qty":      repro.Int(qty),
				"price":    repro.Float(px),
				"notional": repro.Float(float64(qty) * px),
			},
			Payload: []byte(fmt.Sprintf("ORDER %s x%d @ %.2f", sym, qty, px)),
		}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("== phase 1: 40 orders, all consumers connected ==")
	for i := 0; i < 40; i++ {
		order(i)
	}
	time.Sleep(100 * time.Millisecond)
	report := func() {
		e, _, _, ev := execution.Stats()
		r, _, _, rv := risk.Stats()
		a, _, ag, av := archiver.Stats()
		fmt.Printf("execution(NYSE): %d orders   risk(>$150K): %d alerts   archiver(all): %d records\n",
			e, r, a)
		if ev+rv+av != 0 || ag != 0 {
			fmt.Println("!! ordering violations or unexpected gaps")
		}
	}
	report()

	fmt.Println("\n== phase 2: disaster-recovery site fails; trading continues ==")
	if err := archiver.Disconnect(); err != nil {
		return err
	}
	for i := 0; i < 40; i++ {
		order(i)
	}
	time.Sleep(100 * time.Millisecond)
	report()

	fmt.Println("\n== phase 3: site B recovers; archiver catches up exactly once ==")
	if err := archiver.Connect(context.Background(), net, "siteB"); err != nil {
		return err
	}
	defer archiver.Disconnect() //nolint:errcheck
	deadline := time.Now().Add(10 * time.Second)
	for {
		a, _, _, _ := archiver.Stats()
		if a >= 80 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	report()
	a, _, gaps, violations := archiver.Stats()
	fmt.Printf("\narchiver recovered every order: %v (records=%d gaps=%d violations=%d)\n",
		a == 80 && gaps == 0 && violations == 0, a, gaps, violations)
	return nil
}
