// JMS auto-acknowledge: the server-held checkpoint model of section 5.2.
// Unlike native durable subscribers (which own their checkpoint tokens),
// JMS requires the messaging system to track consumption: the SHB commits
// CT(s) to its database whenever the subscriber commits — after EVERY
// event in auto-acknowledge mode. Throughput is then bounded by database
// commit rate, which the paper (and this demo) recovers by batching the CT
// updates of many subscribers into shared transactions over several
// database connections.
//
// Run with: go run ./examples/jmsautoack
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	repro "repro"

	"repro/internal/client"
	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/message"
	"repro/internal/metastore"
	"repro/internal/vtime"
)

const (
	subscribers = 12
	inputRate   = 1500 // events/s
	runFor      = 2 * time.Second
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "jms-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //nolint:errcheck

	net := repro.NewInprocNetwork(0)
	b, err := repro.StartBroker(context.Background(), repro.BrokerConfig{
		Name: "node1", DataDir: filepath.Join(dir, "node1"), Transport: net,
		ListenAddr: "node1", HostedPubends: []repro.PubendConfig{{ID: 1}},
		EnableSHB: true, AllPubends: []repro.PubendID{1},
		TickInterval: 2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer b.Close() //nolint:errcheck

	// The JMS checkpoint database: a 300µs commit models DB2 behind a
	// battery-backed write cache.
	meta, err := metastore.Open(filepath.Join(dir, "jms.meta"), metastore.Options{
		Sync:          metastore.SyncNone,
		CommitLatency: 300 * time.Microsecond,
	})
	if err != nil {
		return err
	}
	defer meta.Close() //nolint:errcheck
	store, err := jms.NewStore(jms.Options{Meta: meta, Connections: 4})
	if err != nil {
		return err
	}
	defer store.Close() //nolint:errcheck

	// JMS consumers: auto-acknowledge (commit per event).
	var consumers []*jms.AutoAckConsumer
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		sub, err := client.NewSubscriber(client.SubscriberOptions{
			ID: vtime.SubscriberID(i + 1), Filter: `true`,
			AckInterval: 25 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		if err := sub.Connect(context.Background(), net, "node1"); err != nil {
			return err
		}
		ac := jms.NewAutoAckConsumer(sub, store)
		consumers = append(consumers, ac)
		wg.Add(1)
		go func() { defer wg.Done(); ac.Run() }() //nolint:errcheck
	}

	// A constant-rate publisher.
	pub, err := client.NewPublisher(context.Background(), net, "node1", "jms-demo")
	if err != nil {
		return err
	}
	defer pub.Close() //nolint:errcheck
	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(time.Second / inputRate)
		defer ticker.Stop()
		seq := int64(0)
		for {
			select {
			case <-ticker.C:
				seq++
				//nolint:errcheck,gosec // acks drained lazily
				pub.PublishAsync(message.Event{
					Attrs: filter.Attributes{"seq": filter.Int(seq)},
				}, 1)
			case <-stop:
				return
			}
		}
	}()

	fmt.Printf("%d JMS auto-ack subscribers consuming %d ev/s for %v...\n",
		subscribers, inputRate, runFor)
	time.Sleep(runFor)
	close(stop)
	time.Sleep(100 * time.Millisecond)
	for _, ac := range consumers {
		ac.Stop()
	}
	wg.Wait()

	var consumed int64
	for _, ac := range consumers {
		consumed += ac.Consumed()
	}
	fmt.Printf("consumed+committed: %d events (%.0f ev/s aggregate)\n",
		consumed, float64(consumed)/runFor.Seconds())
	fmt.Printf("database transactions: %d for %d CT updates — %.1f updates/commit thanks to batching\n",
		store.Commits(), store.Updates(), float64(store.Updates())/float64(store.Commits()))
	ct, err := store.Load(1)
	if err != nil {
		return err
	}
	fmt.Printf("server-held CT for subscriber 1: %s\n", ct)
	return nil
}
