// Reconnect-anywhere: the paper's availability extension (section 1,
// feature 5). Because events are retained at the PHB and the persistent
// filtered log is only a performance optimization, a durable subscriber is
// NOT tied to the SHB holding its history: when its home SHB is down it can
// reconnect to a different SHB, which recovers the missed events from the
// PHB/caches and refilters them.
//
// Run with: go run ./examples/reconnectanywhere
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	repro "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "reconnect-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //nolint:errcheck

	net := repro.NewInprocNetwork(0)
	phb, err := repro.StartBroker(context.Background(), repro.BrokerConfig{
		Name: "phb", DataDir: filepath.Join(dir, "phb"), Transport: net,
		ListenAddr: "phb", HostedPubends: []repro.PubendConfig{{ID: 1}},
		TickInterval: 2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer phb.Close() //nolint:errcheck
	var edges []*repro.Broker
	for _, name := range []string{"edge-east", "edge-west"} {
		b, err := repro.StartBroker(context.Background(), repro.BrokerConfig{
			Name: name, DataDir: filepath.Join(dir, name), Transport: net,
			ListenAddr: name, UpstreamAddr: "phb",
			EnableSHB: true, AllPubends: []repro.PubendID{1},
			TickInterval: 2 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer b.Close() //nolint:errcheck
		edges = append(edges, b)
	}

	pub, err := repro.NewPublisher(context.Background(), net, "phb", "feed")
	if err != nil {
		return err
	}
	defer pub.Close() //nolint:errcheck
	emit := func(topic string, n int) {
		for i := 0; i < n; i++ {
			if _, _, err := pub.Publish(repro.Event{
				Attrs:   repro.Attributes{"topic": repro.String(topic)},
				Payload: []byte(topic),
			}); err != nil {
				log.Fatal(err)
			}
		}
	}

	sub, err := repro.NewDurableSubscriber(repro.SubscriberOptions{
		ID: 1, Filter: `topic = "alerts"`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := sub.Connect(context.Background(), net, "edge-east"); err != nil {
		return err
	}
	fmt.Println("subscriber attached at edge-east")
	emit("alerts", 5)
	emit("noise", 5)
	for i := 0; i < 5; i++ {
		<-sub.Deliveries()
	}
	fmt.Println("received 5 alerts at edge-east")

	// The home SHB fails — and stays down. The subscriber disconnects...
	if err := sub.Disconnect(); err != nil {
		return err
	}
	edges[0].Crash()
	fmt.Println("\nedge-east CRASHED (and stays down); events keep flowing:")
	emit("alerts", 7)
	emit("noise", 7)
	time.Sleep(30 * time.Millisecond)

	// ...and reattaches at edge-west, which has never seen it. The missed
	// interval is recovered from the PHB and refiltered there.
	if err := sub.Connect(context.Background(), net, "edge-west"); err != nil {
		return err
	}
	defer sub.Disconnect() //nolint:errcheck
	fmt.Println("subscriber reattached at edge-west (no history for it there)")
	for i := 0; i < 7; i++ {
		d := <-sub.Deliveries()
		fmt.Printf("  recovered alert @ %s (refiltered from the PHB's log)\n", d.Timestamp)
	}
	events, _, gaps, violations := sub.Stats()
	fmt.Printf("\ntotal events=%d gaps=%d ordering-violations=%d — exactly once, across SHBs\n",
		events, gaps, violations)
	return nil
}
