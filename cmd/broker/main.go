// Command broker runs one overlay broker over TCP. Brokers form a tree:
// the root hosts pubends (PHB role), interior nodes relay and cache, and
// leaves host durable subscribers (SHB role); one process can play all
// roles at once.
//
// Examples:
//
//	# a combined PHB+SHB on one node, hosting pubends 1 and 2
//	broker -name node1 -listen :7070 -data /var/lib/gryphon/node1 \
//	       -pubends 1,2 -shb -all-pubends 1,2
//
//	# a pure SHB joining the tree
//	broker -name edge1 -listen :7071 -upstream phb.example:7070 \
//	       -data /var/lib/gryphon/edge1 -shb -all-pubends 1,2
//
//	# an intermediate relay
//	broker -name mid1 -listen :7072 -upstream phb.example:7070
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/logvol"
	"repro/internal/overlay"
	"repro/internal/pubend"
	"repro/internal/vtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "broker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name       = flag.String("name", "broker", "broker name")
		listen     = flag.String("listen", ":7070", "TCP listen address")
		upstream   = flag.String("upstream", "", "parent broker address (empty = root)")
		dataDir    = flag.String("data", "", "data directory (required for -pubends / -shb)")
		pubends    = flag.String("pubends", "", "comma-separated pubend IDs hosted here (PHB role)")
		shb        = flag.Bool("shb", false, "host durable subscribers (SHB role)")
		allPubends = flag.String("all-pubends", "", "comma-separated system-wide pubend IDs (required with -shb)")
		tick       = flag.Duration("tick", 5*time.Millisecond, "housekeeping interval")
		maxRetain  = flag.Duration("max-retain", 0, "early-release retention bound (0 = retain until released)")
		syncEvery  = flag.Bool("sync-publish", false, "fsync the event log on every publish")
		pubendSync = flag.String("pubend-sync", "explicit", "pubend log durability: explicit (fsync only on request), group (batch concurrent publishes under one fsync), or always (fsync every append)")
		linger     = flag.Duration("group-linger", 0, "max time a group commit waits for more publishes before fsyncing (0 = none)")
		admin      = flag.String("admin", "", "admin HTTP address for /metrics, /healthz, /debug/pprof (empty = disabled)")
		shards     = flag.Int("shards", 0, "event-loop shard count (0 = GOMAXPROCS, 1 = serialized)")
		matchEng   = flag.String("match-engine", "indexed", "subscription matching engine: indexed (counting attribute index) or linear (brute-force scan)")
		subShards  = flag.Int("sub-shards", 0, "SHB subscriber shard count (0 = min(GOMAXPROCS, 8), 1 = single-lock engine)")
		catchupW   = flag.Int("catchup-weight", 0, "catchup scheduler quantum: events one catchup stream may deliver per round before yielding to live traffic (0 = 256)")
	)
	flag.Parse()

	var syncPolicy logvol.SyncPolicy
	switch *pubendSync {
	case "explicit":
		syncPolicy = logvol.SyncExplicit
	case "group":
		syncPolicy = logvol.SyncGroup
	case "always":
		syncPolicy = logvol.SyncAlways
	default:
		return fmt.Errorf("-pubend-sync: unknown policy %q (want explicit, group, or always)", *pubendSync)
	}

	cfg := broker.Config{
		Name:                *name,
		DataDir:             *dataDir,
		Transport:           overlay.TCPTransport{},
		ListenAddr:          *listen,
		UpstreamAddr:        *upstream,
		EnableSHB:           *shb,
		TickInterval:        *tick,
		AdminAddr:           *admin,
		Shards:              *shards,
		PubendSync:          syncPolicy,
		GroupCommitMaxDelay: *linger,
		MatchEngine:         *matchEng,
		SubShards:           *subShards,
		CatchupWeight:       *catchupW,
	}
	var policy pubend.Policy
	if *maxRetain > 0 {
		policy = pubend.MaxRetain{Retain: vtime.Timestamp(*maxRetain / time.Microsecond)}
	}
	hosted, err := parseIDs(*pubends)
	if err != nil {
		return fmt.Errorf("-pubends: %w", err)
	}
	for _, id := range hosted {
		cfg.HostedPubends = append(cfg.HostedPubends, broker.PubendConfig{
			ID:               id,
			Policy:           policy,
			SyncEveryPublish: *syncEvery,
		})
	}
	if cfg.AllPubends, err = parseIDs(*allPubends); err != nil {
		return fmt.Errorf("-all-pubends: %w", err)
	}

	b, err := broker.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("broker %s listening on %s (PHB pubends: %v, SHB: %v, upstream: %q, shards: %d)\n",
		*name, *listen, hosted, *shb, *upstream, b.Shards())
	if addr := b.AdminAddr(); addr != "" {
		fmt.Printf("admin endpoint on http://%s (/metrics, /healthz, /readyz, /debug/pprof/)\n", addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return b.Close()
}

func parseIDs(s string) ([]vtime.PubendID, error) {
	if s == "" {
		return nil, nil
	}
	var out []vtime.PubendID
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad pubend id %q: %w", part, err)
		}
		out = append(out, vtime.PubendID(id))
	}
	return out, nil
}
