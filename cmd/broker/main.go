// Command broker runs one overlay broker over TCP. Brokers form a tree:
// the root hosts pubends (PHB role), interior nodes relay and cache, and
// leaves host durable subscribers (SHB role); one process can play all
// roles at once.
//
// Every flag is the kebab-case form of the corresponding topology.Spec
// JSON key (the file format cmd/cluster consumes), so the two surfaces
// describe the same broker the same way.
//
// Examples:
//
//	# a combined PHB+SHB on one node, hosting pubends 1 and 2
//	broker -name node1 -listen :7070 -data /var/lib/gryphon \
//	       -pubends 1,2 -shb -all-pubends 1,2
//
//	# a pure SHB joining the tree
//	broker -name edge1 -listen :7071 -upstream phb.example:7070 \
//	       -data /var/lib/gryphon -shb -all-pubends 1,2
//
//	# an intermediate relay
//	broker -name mid1 -listen :7072 -upstream phb.example:7070
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/broker"
	"repro/internal/overlay"
	"repro/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "broker:", err)
		os.Exit(1)
	}
}

func run() error {
	f := topology.RegisterFlags(flag.CommandLine)
	flag.Parse()
	spec, err := f.Spec()
	if err != nil {
		return err
	}
	cfg, err := spec.BrokerConfig(f.DataDir, overlay.TCPTransport{})
	if err != nil {
		return err
	}
	b, err := broker.New(cfg)
	if err != nil {
		return err
	}
	hosted := make([]uint32, 0, len(spec.Pubends))
	hosted = append(hosted, spec.Pubends...)
	fmt.Printf("broker %s listening on %s (PHB pubends: %v, SHB: %v, upstream: %q, shards: %d)\n",
		spec.Name, spec.Listen, hosted, spec.SHB, spec.Upstream, b.Shards())
	if addr := b.AdminAddr(); addr != "" {
		fmt.Printf("admin endpoint on http://%s (/metrics, /healthz, /readyz, /debug/pprof/)\n", addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return b.Close()
}
