// Command benchrunner regenerates the paper's evaluation (section 5):
// every table and figure, as console tables plus optional CSV time series
// for the figures.
//
// Usage:
//
//	benchrunner -exp all                 # every experiment, scaled defaults
//	benchrunner -exp scalability -full   # longer, closer-to-paper runs
//	benchrunner -exp failover -csv out/  # also write figure 7/8 series
//
// Experiments: latency (E1), scalability (E2/fig4), catchup (E3/fig5),
// rates (E4/fig6), pfs (E5/§5.1.2), jms (E6/§5.2), failover (E7/fig7+8),
// earlyrelease (E8/§3).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiment"
	"repro/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

type runner struct {
	dir  string
	csv  string
	full bool
}

func run() error {
	exp := flag.String("exp", "all", "experiment: latency|scalability|catchup|rates|pfs|jms|failover|earlyrelease|filtering|torture|all")
	csvDir := flag.String("csv", "", "directory to write figure CSV series into")
	full := flag.Bool("full", false, "run longer, closer-to-paper-scale experiments")
	flag.Parse()

	dir, err := os.MkdirTemp("", "benchrunner-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //nolint:errcheck

	r := &runner{dir: dir, csv: *csvDir, full: *full}
	if r.csv != "" {
		if err := os.MkdirAll(r.csv, 0o755); err != nil {
			return err
		}
	}
	steps := map[string]func() error{
		"latency":      r.latency,
		"scalability":  r.scalability,
		"catchup":      r.catchup,
		"rates":        r.rates,
		"pfs":          r.pfs,
		"jms":          r.jms,
		"failover":     r.failover,
		"earlyrelease": r.earlyRelease,
		"filtering":    r.filtering,
		"torture":      r.torture,
	}
	if *exp == "all" {
		for _, name := range []string{
			"latency", "scalability", "catchup", "rates",
			"pfs", "jms", "failover", "earlyrelease",
			"filtering", "torture",
		} {
			if err := steps[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	step, ok := steps[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return step()
}

func (r *runner) sub(name string) string { return filepath.Join(r.dir, name) }

func (r *runner) writeCSV(name string, series ...*metrics.Series) error {
	if r.csv == "" {
		return nil
	}
	for _, s := range series {
		f, err := os.Create(filepath.Join(r.csv, name+"-"+s.Name()+".csv"))
		if err != nil {
			return err
		}
		if err := s.WriteCSV(f); err != nil {
			f.Close() //nolint:errcheck,gosec // already failing
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) latency() error {
	events := 40
	if r.full {
		events = 200
	}
	res, err := experiment.RunLatency(r.sub("latency"), 5, events,
		44*time.Millisecond, 200*time.Microsecond)
	if err != nil {
		return err
	}
	fmt.Println("## E1 — End-to-end latency, 5-hop broker network (paper: 50 ms, 44 ms logging)")
	fmt.Printf("%-28s %10s %10s %10s\n", "configuration", "mean", "p50", "p95")
	fmt.Printf("%-28s %10s %10s %10s\n", "with PHB forced logging",
		res.WithLogging.Mean.Round(time.Microsecond),
		res.WithLogging.P50.Round(time.Microsecond),
		res.WithLogging.P95.Round(time.Microsecond))
	fmt.Printf("%-28s %10s %10s %10s\n", "without logging",
		res.WithoutLogging.Mean.Round(time.Microsecond),
		res.WithoutLogging.P50.Round(time.Microsecond),
		res.WithoutLogging.P95.Round(time.Microsecond))
	fmt.Printf("logging share of end-to-end mean: %.0f%% (paper: 88%%)\n\n", res.LoggingShareMean*100)
	return nil
}

func (r *runner) scalability() error {
	measure := 1500 * time.Millisecond
	subsPer := 8
	if r.full {
		measure = 5 * time.Second
		subsPer = 24
	}
	fmt.Println("## E2 — Figure 4: aggregate delivery rate vs number of SHBs")
	fmt.Printf("%-16s %6s %6s %14s %14s %6s\n",
		"configuration", "SHBs", "subs", "events/s", "per-sub ev/s", "gaps")
	type cfg struct {
		name  string
		shbs  int
		churn bool
	}
	var base float64
	for _, c := range []cfg{
		{"1 broker", 0, false}, {"1 SHB", 1, false},
		{"2 SHB", 2, false}, {"4 SHB", 4, false},
		{"1 SHB + churn", 1, true}, {"2 SHB + churn", 2, true},
		{"4 SHB + churn", 4, true},
	} {
		res, err := experiment.RunScalability(r.sub("scal-"+c.name), experiment.ScalabilityParams{
			SHBs:         c.shbs,
			SubsPerSHB:   subsPer,
			Disconnect:   c.churn,
			Intermediate: c.shbs > 1,
			Measure:      measure,
		})
		if err != nil {
			return err
		}
		if res.Violations != 0 {
			return fmt.Errorf("%s: %d ordering violations", c.name, res.Violations)
		}
		fmt.Printf("%-16s %6d %6d %14.0f %14.1f %6d\n",
			c.name, maxInt(c.shbs, 1), res.Subscribers, res.AggregateRate,
			res.PerSubRate, res.Gaps)
		if c.name == "1 SHB" {
			base = res.AggregateRate
		}
		if c.name == "4 SHB" && base > 0 {
			fmt.Printf("  scaling 1→4 SHBs: %.2fx (paper: 3.96x, 20K→79.2K)\n", res.AggregateRate/base)
		}
	}
	fmt.Println()
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (r *runner) catchup() error {
	dur := 3 * time.Second
	if r.full {
		dur = 10 * time.Second
	}
	res, err := experiment.RunCatchupRates(r.sub("catchup"), experiment.CatchupRatesParams{
		Subscribers: 12,
		Duration:    dur,
	})
	if err != nil {
		return err
	}
	fmt.Println("## E3 — Figure 5: catchup durations under periodic disconnection")
	fmt.Printf("catchups completed: %d  mean: %.2fms  p95: %.2fms (paper: 5–6 s for 5 s outages; here outages are 100 ms and recovery is in-memory)\n\n",
		len(res.CatchupDurations),
		float64(res.CatchupMean)/1e6,
		float64(res.CatchupP95)/1e6)
	return nil
}

func (r *runner) rates() error {
	dur := 3 * time.Second
	if r.full {
		dur = 10 * time.Second
	}
	res, err := experiment.RunCatchupRates(r.sub("rates"), experiment.CatchupRatesParams{
		Subscribers: 12,
		Duration:    dur,
	})
	if err != nil {
		return err
	}
	fmt.Println("## E4 — Figure 6: latestDelivered(p) and released(p) advance rates")
	fmt.Printf("latestDelivered: mean %.0f tick-ms/s (paper: ≈1000, steady)\n", res.LDRateMean)
	fmt.Printf("released:        min  %.0f tick-ms/s (paper: large dips while subscribers are disconnected)\n\n",
		res.RelRateMin)
	return r.writeCSV("fig6", res.LDRate, res.RelRate)
}

func (r *runner) pfs() error {
	events := 8000
	if r.full {
		events = 80000 // the paper's full 100 s workload
	}
	res, err := experiment.RunPFSBench(r.sub("pfs"), experiment.PFSBenchParams{Events: events})
	if err != nil {
		return err
	}
	fmt.Println("## E5 — §5.1.2 PFS microbenchmark (paper: 25x less data, >5x faster)")
	fmt.Printf("%-28s %12s %12s\n", "", "PFS", "per-sub log")
	fmt.Printf("%-28s %12s %12s\n", "duration",
		res.PFSDuration.Round(time.Millisecond), res.EventLogDur.Round(time.Millisecond))
	fmt.Printf("%-28s %11.1fM %11.1fM\n", "bytes logged",
		float64(res.PFSBytes)/1e6, float64(res.EventLogBytes)/1e6)
	fmt.Printf("speedup: %.1fx   data reduction: %.1fx\n\n", res.SpeedupX, res.DataReductionX)
	return nil
}

func (r *runner) jms() error {
	measure := 1500 * time.Millisecond
	big := 100
	if r.full {
		measure = 5 * time.Second
		big = 200 // the paper's subscriber count
	}
	fmt.Println("## E6 — §5.2 JMS auto-acknowledge (paper: 4K ev/s @25 subs, 7.6K @200, 4 connections)")
	fmt.Printf("%-6s %6s %14s %14s %12s\n", "subs", "conns", "events/s", "db commits/s", "updates/tx")
	for _, cfg := range []struct{ subs, conns int }{
		{25, 4}, {big, 4}, {25, 1},
	} {
		res, err := experiment.RunJMS(r.sub(fmt.Sprintf("jms-%d-%d", cfg.subs, cfg.conns)),
			experiment.JMSParams{
				Subscribers: cfg.subs,
				Connections: cfg.conns,
				Measure:     measure,
			})
		if err != nil {
			return err
		}
		fmt.Printf("%-6d %6d %14.0f %14.0f %12.1f\n",
			res.Subscribers, res.Connections, res.AggregateRate,
			res.DBCommitRate, res.UpdatesPerTx)
	}
	fmt.Println()
	return nil
}

func (r *runner) failover() error {
	p := experiment.FailoverParams{
		Subscribers: 24,
		Machines:    4,
		Down:        500 * time.Millisecond,
		PostRun:     2 * time.Second,
	}
	if r.full {
		p.Subscribers = 40 // the paper's count
		p.Machines = 5
		p.Down = 2 * time.Second
		p.PostRun = 6 * time.Second
	}
	res, err := experiment.RunFailover(r.sub("failover"), p)
	if err != nil {
		return err
	}
	fmt.Println("## E7 — Figures 7/8 + result 3: SHB crash and recovery")
	fmt.Printf("constream recovery slope: %.1fx normal (paper: ≈5x)\n",
		res.RecoveryLDRate/res.NormalLDRate)
	fmt.Printf("catchups completed: %d, mean %.2fms (all subscribers simultaneously; paper: 116 s at paper scale)\n",
		len(res.CatchupDur), float64(res.CatchupMean)/1e6)
	fmt.Printf("SHB delivery rate: normal %.0f ev/s, during all-subscriber catchup %.0f ev/s (paper: 20K vs 10K)\n",
		res.NormalRate, res.CatchupRate)
	shield := 0.0
	if total := res.CacheHits + res.CacheMisses; total > 0 {
		shield = 100 * float64(res.CacheHits) / float64(total)
	}
	fmt.Printf("PHB shielding: %.0f%% of catchup event fetches served by the SHB cache; only the rest reached upstream (figure 8 bottom: PHB CPU barely moves)\n", shield)
	fmt.Printf("gaps: %d  ordering violations: %d (must be 0)\n\n", res.Gaps, res.Violations)
	series := append([]*metrics.Series{res.LDSeries, res.RelSeries}, res.MachineRates...)
	return r.writeCSV("fig7-8", series...)
}

func (r *runner) earlyRelease() error {
	res, err := experiment.RunEarlyRelease(r.sub("earlyrelease"), 100*time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Println("## E8 — §3 early release (PHB-controlled maxRetain policy)")
	fmt.Printf("events published: %d; lagging subscriber received %d explicit gap(s), then %d live event(s)\n",
		res.Published, res.GapsDelivered, res.EventsAfter)
	fmt.Printf("pubend retains %d events after reclamation; ordering violations: %d\n\n",
		res.PubendEvents, res.Violations)
	return nil
}

func (r *runner) filtering() error {
	res, err := experiment.RunFilteringAblation(r.sub("filtering"), time.Second)
	if err != nil {
		return err
	}
	fmt.Println("## Ablation — intermediate-broker filtering (section 1)")
	fmt.Printf("event transmissions on SHB links: %d forwarded as data, %d downgraded to silence\n",
		res.EventsForwarded, res.EventsFiltered)
	fmt.Printf("network traffic saved by filtering at the intermediate: %.0f%%\n\n",
		res.SavedFraction*100)
	return nil
}

func (r *runner) torture() error {
	dur := 3 * time.Second
	if r.full {
		dur = 10 * time.Second
	}
	res, err := experiment.RunTorture(r.sub("torture"), experiment.TortureParams{
		Subscribers: 6,
		Duration:    dur,
		Seed:        1,
	})
	if err != nil {
		return err
	}
	fmt.Println("## Fault injection — randomized SHB crashes and subscriber churn")
	fmt.Printf("published %d events through %d SHB crash/restarts and %d subscriber churns\n",
		res.Published, res.Crashes, res.Churns)
	fmt.Printf("exactly-once held: %v (gaps=%d, ordering violations=%d)\n\n",
		res.AllDelivered && res.Violations == 0, res.Gaps, res.Violations)
	return nil
}
