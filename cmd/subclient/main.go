// Command subclient runs a durable subscriber against a subscriber hosting
// broker. The checkpoint token persists in -ct-file, so stopping and
// restarting the process (even against a restarted broker) resumes
// delivery with no duplicates and no loss — the paper's durable
// subscription model end to end.
//
// Examples:
//
//	subclient -broker localhost:7071 -id 1 -filter 'topic = "trades.NYSE"' \
//	          -ct-file /var/lib/myapp/sub1.ct
//	subclient -broker localhost:7071 -id 2 -filter 'price > 100 and exists(account)'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/message"
	"repro/internal/overlay"
	"repro/internal/vtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "subclient:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("broker", "localhost:7071", "SHB address")
		id      = flag.Uint("id", 1, "durable subscription id (system-wide)")
		src     = flag.String("filter", "true", "subscription filter")
		ctFile  = flag.String("ct-file", "", "checkpoint token file (empty = in-memory only)")
		ack     = flag.Duration("ack", 250*time.Millisecond, "acknowledgment interval")
		quiet   = flag.Bool("quiet", false, "suppress per-event output; print a rate line per second")
		credits = flag.Uint("credits", 0, "flow-control credits (0 = unlimited)")
	)
	flag.Parse()

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID:          vtime.SubscriberID(*id),
		Filter:      *src,
		CTPath:      *ctFile,
		AckInterval: *ack,
		Credits:     uint32(*credits),
	})
	if err != nil {
		return err
	}
	if err := sub.Connect(context.Background(), overlay.TCPTransport{}, *addr); err != nil {
		return err
	}
	fmt.Printf("subscribed id=%d filter=%q ct=%s\n", *id, *src, sub.CT())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var events, gaps int64
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	var lastEvents int64
	for {
		select {
		case d := <-sub.Deliveries():
			switch d.Kind {
			case message.DeliverEvent:
				events++
				if !*quiet {
					fmt.Printf("event %s @ %s: %d attrs, %dB payload\n",
						d.Pubend, d.Timestamp, len(d.Event.Attrs), len(d.Event.Payload))
				}
			case message.DeliverGap:
				gaps++
				fmt.Printf("GAP on %s up to %s: events were early-released while disconnected\n",
					d.Pubend, d.Timestamp)
			}
		case <-tick.C:
			if *quiet {
				fmt.Printf("rate: %d events/s (total %d, gaps %d)\n", events-lastEvents, events, gaps)
				lastEvents = events
			}
		case <-sig:
			fmt.Printf("detaching (events=%d gaps=%d, ct=%s)\n", events, gaps, sub.CT())
			return sub.Disconnect()
		}
	}
}
