// Command cluster launches a whole broker tree in one process from a JSON
// topology file — convenient for development and demos (production
// deployments run one cmd/broker per node).
//
//	cluster -config topology.json
//
// Example topology.json:
//
//	{
//	  "dataDir": "/tmp/gryphon",
//	  "brokers": [
//	    {"name": "phb",  "listen": ":7070", "pubends": [1, 2]},
//	    {"name": "mid",  "listen": ":7071", "upstream": "localhost:7070"},
//	    {"name": "shb1", "listen": ":7072", "upstream": "localhost:7071",
//	     "shb": true, "allPubends": [1, 2]},
//	    {"name": "shb2", "listen": ":7073", "upstream": "localhost:7071",
//	     "shb": true, "allPubends": [1, 2]}
//	  ]
//	}
//
// Brokers are started in file order (parents first), all over TCP, and shut
// down in reverse order on SIGINT/SIGTERM.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/overlay"
	"repro/internal/pubend"
	"repro/internal/vtime"
)

// topologyFile is the JSON schema of -config.
type topologyFile struct {
	DataDir string       `json:"dataDir"`
	Brokers []brokerSpec `json:"brokers"`
}

type brokerSpec struct {
	Name       string   `json:"name"`
	Listen     string   `json:"listen"`
	Upstream   string   `json:"upstream"`
	Pubends    []uint32 `json:"pubends"`
	SHB        bool     `json:"shb"`
	AllPubends []uint32 `json:"allPubends"`
	// MaxRetainMillis enables the early-release policy on this broker's
	// pubends (virtual milliseconds).
	MaxRetainMillis int64 `json:"maxRetainMillis"`
	// TickMillis overrides the housekeeping interval.
	TickMillis int64 `json:"tickMillis"`
	// Admin is the admin HTTP address for /metrics, /healthz, and
	// /debug/pprof (empty = disabled).
	Admin string `json:"admin"`
	// Shards is the event-loop shard count (0 = GOMAXPROCS,
	// 1 = serialized).
	Shards int `json:"shards"`
	// MatchEngine selects the subscription matching engine: "" or
	// "indexed" for the counting attribute index, "linear" for the
	// brute-force scan.
	MatchEngine string `json:"matchEngine"`
	// SubShards is the SHB subscriber shard count (0 = min(GOMAXPROCS, 8),
	// 1 = the single-lock engine).
	SubShards int `json:"subShards"`
	// CatchupWeight is the catchup scheduler quantum: events one catchup
	// stream may deliver per scheduling round before yielding the shard
	// to live traffic (0 = 256).
	CatchupWeight int `json:"catchupWeight"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	configPath := flag.String("config", "", "topology JSON file (required)")
	flag.Parse()
	if *configPath == "" {
		return fmt.Errorf("-config is required")
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		return err
	}
	var topo topologyFile
	if err := json.Unmarshal(raw, &topo); err != nil {
		return fmt.Errorf("parse %s: %w", *configPath, err)
	}
	if len(topo.Brokers) == 0 {
		return fmt.Errorf("no brokers in topology")
	}
	if topo.DataDir == "" {
		topo.DataDir, err = os.MkdirTemp("", "gryphon-cluster-*")
		if err != nil {
			return err
		}
		fmt.Printf("dataDir not set; using %s\n", topo.DataDir)
	}

	var started []*broker.Broker
	shutdown := func() {
		for i := len(started) - 1; i >= 0; i-- {
			started[i].Close() //nolint:errcheck,gosec // shutdown path
		}
	}
	for _, spec := range topo.Brokers {
		cfg, err := specToConfig(topo.DataDir, spec)
		if err != nil {
			shutdown()
			return fmt.Errorf("broker %q: %w", spec.Name, err)
		}
		b, err := broker.New(cfg)
		if err != nil {
			shutdown()
			return fmt.Errorf("start broker %q: %w", spec.Name, err)
		}
		started = append(started, b)
		role := "relay"
		switch {
		case len(spec.Pubends) > 0 && spec.SHB:
			role = "PHB+SHB"
		case len(spec.Pubends) > 0:
			role = "PHB"
		case spec.SHB:
			role = "SHB"
		}
		fmt.Printf("started %-12s %-8s listen=%s upstream=%q\n",
			spec.Name, role, spec.Listen, spec.Upstream)
		if addr := b.AdminAddr(); addr != "" {
			fmt.Printf("  admin http://%s\n", addr)
		}
	}
	fmt.Printf("%d brokers up; Ctrl-C to stop\n", len(started))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	shutdown()
	return nil
}

func specToConfig(dataDir string, spec brokerSpec) (broker.Config, error) {
	if spec.Name == "" || spec.Listen == "" {
		return broker.Config{}, fmt.Errorf("name and listen are required")
	}
	cfg := broker.Config{
		Name:          spec.Name,
		DataDir:       filepath.Join(dataDir, spec.Name),
		Transport:     overlay.TCPTransport{},
		ListenAddr:    spec.Listen,
		UpstreamAddr:  spec.Upstream,
		EnableSHB:     spec.SHB,
		AdminAddr:     spec.Admin,
		Shards:        spec.Shards,
		MatchEngine:   spec.MatchEngine,
		SubShards:     spec.SubShards,
		CatchupWeight: spec.CatchupWeight,
	}
	if spec.TickMillis > 0 {
		cfg.TickInterval = time.Duration(spec.TickMillis) * time.Millisecond
	}
	var policy pubend.Policy
	if spec.MaxRetainMillis > 0 {
		policy = pubend.MaxRetain{Retain: vtime.Timestamp(spec.MaxRetainMillis) * vtime.TicksPerMilli}
	}
	for _, id := range spec.Pubends {
		cfg.HostedPubends = append(cfg.HostedPubends, broker.PubendConfig{
			ID:     vtime.PubendID(id),
			Policy: policy,
		})
	}
	for _, id := range spec.AllPubends {
		cfg.AllPubends = append(cfg.AllPubends, vtime.PubendID(id))
	}
	if spec.SHB && len(cfg.AllPubends) == 0 {
		return broker.Config{}, fmt.Errorf("shb requires allPubends")
	}
	return cfg, nil
}
