// Command cluster launches a whole broker tree in one process from a
// topology spec — convenient for development, demos, and reconfiguration
// rehearsals (production deployments run one cmd/broker per node). The
// spec format is internal/topology's versioned JSON: the same BrokerSpec
// surface cmd/broker exposes as flags, plus an optional timed mutation
// script that the driver applies against the live tree.
//
//	cluster -config topology.json
//
// Example topology.json:
//
//	{
//	  "dataDir": "/tmp/gryphon",
//	  "brokers": [
//	    {"name": "phb",  "listen": ":7070", "pubends": [1, 2]},
//	    {"name": "mid",  "listen": ":7071", "upstream": "phb"},
//	    {"name": "shb1", "listen": ":7072", "upstream": "mid",
//	     "shb": true, "allPubends": [1, 2]},
//	    {"name": "shb2", "listen": ":7073", "upstream": "mid",
//	     "shb": true, "allPubends": [1, 2]}
//	  ],
//	  "mutations": [
//	    {"atMillis": 5000,  "op": "kill",     "broker": "mid"},
//	    {"atMillis": 6000,  "op": "reparent", "broker": "shb1", "upstream": "phb"},
//	    {"atMillis": 8000,  "op": "restart",  "broker": "mid"},
//	    {"atMillis": 10000, "op": "add", "spec":
//	     {"name": "late", "listen": ":7074", "upstream": "mid"}}
//	  ]
//	}
//
// A broker's upstream — and each entry of its candidate-parent "parents"
// list — may be another broker's name (resolved to its bound address, so
// ephemeral ":0" listens work) or a literal dial address. A kill mutation
// with "permanent": true marks the broker unrestartable, forcing its
// subtree to self-heal around it for good.
// Brokers start in file order (parents first), all over TCP; mutations
// fire at their offsets from startup; SIGINT/SIGTERM drains and stops the
// tree in reverse order.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/overlay"
	"repro/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

// node is one broker of the running tree: its declarative spec (kept
// current across re-parents, so a restart rejoins the tree as it is now,
// not as the file described it) and the live handle (nil while killed).
type node struct {
	spec topology.BrokerSpec
	b    *broker.Broker
	dead bool // permanently killed; restart is refused
}

// cluster drives a topology.Spec: start order, name→broker resolution,
// and the timed mutation script.
type cluster struct {
	dataDir string
	nodes   map[string]*node
	order   []string // start order, for reverse shutdown
}

func run() error {
	configPath := flag.String("config", "", "topology JSON file (required)")
	flag.Parse()
	if *configPath == "" {
		return fmt.Errorf("-config is required")
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		return err
	}
	spec, err := topology.Parse(raw)
	if err != nil {
		return err
	}
	if spec.DataDir == "" {
		spec.DataDir, err = os.MkdirTemp("", "gryphon-cluster-*")
		if err != nil {
			return err
		}
		fmt.Printf("dataDir not set; using %s\n", spec.DataDir)
	}

	c := &cluster{dataDir: spec.DataDir, nodes: make(map[string]*node)}
	defer c.shutdown()
	for _, bs := range spec.Brokers {
		if err := c.start(bs); err != nil {
			return err
		}
	}
	fmt.Printf("%d brokers up; Ctrl-C to stop\n", len(c.order))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	mutationsDone := c.runMutations(spec.Mutations, sig)

	<-sig
	signal.Stop(sig)
	close(mutationsDone)
	fmt.Println("shutting down")
	return nil
}

// resolve turns an upstream reference into a dial address: a running
// broker's name resolves to its bound address; anything else is a literal.
func (c *cluster) resolve(upstream string) string {
	if n, ok := c.nodes[upstream]; ok && n.b != nil {
		return n.b.BoundAddr()
	}
	return upstream
}

// start brings up one broker, resolving its upstream and candidate
// parents by name.
func (c *cluster) start(bs topology.BrokerSpec) error {
	resolved := bs
	resolved.Upstream = c.resolve(bs.Upstream)
	resolved.Parents = nil
	for _, p := range bs.Parents {
		resolved.Parents = append(resolved.Parents, c.resolve(p))
	}
	cfg, err := resolved.BrokerConfig(c.dataDir, overlay.TCPTransport{})
	if err != nil {
		return fmt.Errorf("broker %q: %w", bs.Name, err)
	}
	b, err := broker.New(cfg)
	if err != nil {
		return fmt.Errorf("start broker %q: %w", bs.Name, err)
	}
	n, known := c.nodes[bs.Name]
	if !known {
		n = &node{spec: bs}
		c.nodes[bs.Name] = n
		c.order = append(c.order, bs.Name)
	}
	n.b = b
	role := "relay"
	switch {
	case len(bs.Pubends) > 0 && bs.SHB:
		role = "PHB+SHB"
	case len(bs.Pubends) > 0:
		role = "PHB"
	case bs.SHB:
		role = "SHB"
	}
	fmt.Printf("started %-12s %-8s listen=%s upstream=%q\n",
		bs.Name, role, bs.Listen, bs.Upstream)
	if addr := b.AdminAddr(); addr != "" {
		fmt.Printf("  admin http://%s\n", addr)
	}
	return nil
}

// runMutations fires the spec's mutation script at its offsets from now.
// The returned channel cancels the script (close it on shutdown).
func (c *cluster) runMutations(muts []topology.Mutation, sig chan os.Signal) chan struct{} {
	done := make(chan struct{})
	if len(muts) == 0 {
		return done
	}
	ordered := make([]topology.Mutation, len(muts))
	copy(ordered, muts)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].AtMillis < ordered[j].AtMillis })
	start := time.Now()
	go func() {
		for _, m := range ordered {
			at := start.Add(time.Duration(m.AtMillis) * time.Millisecond)
			select {
			case <-time.After(time.Until(at)):
			case <-done:
				return
			}
			if err := c.apply(m); err != nil {
				fmt.Fprintf(os.Stderr, "cluster: mutation failed: %v\n", err)
				select { // a broken script stops the cluster loudly
				case sig <- syscall.SIGTERM:
				default:
				}
				return
			}
		}
	}()
	return done
}

// apply executes one mutation against the live tree.
func (c *cluster) apply(m topology.Mutation) error {
	n := c.nodes[m.Broker]
	switch m.Op {
	case "add":
		return c.start(*m.Spec)
	case "kill":
		if n.b == nil {
			return fmt.Errorf("kill %q: already down", m.Broker)
		}
		n.b.Crash()
		n.b = nil
		if m.Permanent {
			n.dead = true
			fmt.Printf("killed %s (permanent)\n", m.Broker)
		} else {
			fmt.Printf("killed %s\n", m.Broker)
		}
		return nil
	case "restart":
		if n.b != nil {
			return fmt.Errorf("restart %q: still running", m.Broker)
		}
		if n.dead {
			return fmt.Errorf("restart %q: permanently killed", m.Broker)
		}
		return c.start(n.spec)
	case "reparent":
		if n.b == nil {
			return fmt.Errorf("reparent %q: broker is down", m.Broker)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := n.b.SetUpstream(ctx, c.resolve(m.Upstream)); err != nil {
			return fmt.Errorf("reparent %q under %q: %w", m.Broker, m.Upstream, err)
		}
		n.spec.Upstream = m.Upstream // restarts rejoin the current tree
		fmt.Printf("reparented %s under %s\n", m.Broker, m.Upstream)
		return nil
	case "detach":
		if n.b == nil {
			return fmt.Errorf("detach %q: broker is down", m.Broker)
		}
		n.b.DetachUpstream()
		n.spec.Upstream = ""
		fmt.Printf("detached %s (now a root)\n", m.Broker)
		return nil
	}
	return fmt.Errorf("unknown op %q", m.Op) // unreachable: Parse validated
}

// shutdown drains and stops every broker, children before parents.
func (c *cluster) shutdown() {
	for i := len(c.order) - 1; i >= 0; i-- {
		n := c.nodes[c.order[i]]
		if n.b == nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		n.b.Shutdown(ctx) //nolint:errcheck,gosec // shutdown path
		cancel()
	}
}
