// Command pubclient publishes events to a publisher hosting broker, either
// a fixed count or a sustained rate, reading payload lines from stdin when
// -stdin is set.
//
// Examples:
//
//	pubclient -broker localhost:7070 -topic trades.NYSE -count 100
//	pubclient -broker localhost:7070 -topic alerts -rate 500 -duration 30s
//	echo "hello durable world" | pubclient -broker localhost:7070 -topic demo -stdin
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/overlay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pubclient:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("broker", "localhost:7070", "PHB address")
		topic    = flag.String("topic", "demo", "event topic attribute")
		count    = flag.Int("count", 10, "events to publish (ignored with -rate or -stdin)")
		rate     = flag.Int("rate", 0, "publish at this rate (events/s) for -duration")
		duration = flag.Duration("duration", 10*time.Second, "how long to publish at -rate")
		payload  = flag.Int("payload", 250, "payload size in bytes")
		stdin    = flag.Bool("stdin", false, "publish one event per stdin line")
	)
	flag.Parse()

	pub, err := client.NewPublisher(context.Background(), overlay.TCPTransport{}, *addr, "pubclient")
	if err != nil {
		return err
	}
	defer pub.Close() //nolint:errcheck

	publish := func(body []byte, seq int) error {
		pe, ts, err := pub.Publish(message.Event{
			Attrs: filter.Attributes{
				"topic": filter.String(*topic),
				"seq":   filter.Int(int64(seq)),
			},
			Payload: body,
		})
		if err != nil {
			return err
		}
		fmt.Printf("published seq=%d to %s @ %s\n", seq, pe, ts)
		return nil
	}

	switch {
	case *stdin:
		scanner := bufio.NewScanner(os.Stdin)
		seq := 0
		for scanner.Scan() {
			if err := publish(scanner.Bytes(), seq); err != nil {
				return err
			}
			seq++
		}
		return scanner.Err()
	case *rate > 0:
		body := make([]byte, *payload)
		interval := time.Second / time.Duration(*rate)
		deadline := time.Now().Add(*duration)
		seq := 0
		for time.Now().Before(deadline) {
			if err := publish(body, seq); err != nil {
				return err
			}
			seq++
			time.Sleep(interval)
		}
		return nil
	default:
		body := make([]byte, *payload)
		for seq := 0; seq < *count; seq++ {
			if err := publish(body, seq); err != nil {
				return err
			}
		}
		return nil
	}
}
